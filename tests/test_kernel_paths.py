"""Tests for the kernel read/write data paths, costs, and io_uring."""

import pytest

from repro.device import LatencyModel
from repro.errors import BadFileDescriptor, InvalidArgument
from repro.kernel import CostModel, IoUring, Kernel, KernelConfig
from repro.sim import Simulator

# A deterministic gen-2 Optane: Table 1 device latency, no jitter.
NVM2_EXACT = LatencyModel("nvm2-exact", read_ns=3224, write_ns=3600,
                          parallelism=8, jitter=0.0)
SLOW_EXACT = LatencyModel("slow-exact", read_ns=80_000, write_ns=80_000,
                          parallelism=8, jitter=0.0)


def make_kernel(model=NVM2_EXACT, **config_kwargs):
    sim = Simulator()
    kernel = Kernel(sim, model, KernelConfig(**config_kwargs))
    return sim, kernel


def test_table1_read_latency_exact():
    """A 512 B random read costs exactly the Table 1 total (6272 ns)."""
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(8192))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        start = sim.now
        result = yield from kernel.sys_pread(proc, fd, 512, 512)
        elapsed = sim.now - start
        return result, elapsed

    result, elapsed = kernel.run_syscall(workload())
    assert result.ok
    assert elapsed == CostModel().software_total_ns() + 3224 == 6272


def test_read_returns_correct_bytes():
    sim, kernel = make_kernel()
    payload = bytes(range(256)) * 16  # 4096 bytes
    kernel.create_file("/f", payload)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        result = yield from kernel.sys_pread(proc, fd, 1024, 512)
        return result

    result = kernel.run_syscall(workload())
    assert result.data == payload[1024:1536]


def test_fast_device_polls_slow_device_blocks():
    _, fast_kernel = make_kernel(NVM2_EXACT)
    _, slow_kernel = make_kernel(SLOW_EXACT)
    assert fast_kernel.should_poll()
    assert not slow_kernel.should_poll()


def test_polling_read_holds_core_for_device_time():
    sim, kernel = make_kernel(cores=1)
    kernel.create_file("/f", bytes(4096))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_pread(proc, fd, 0, 512)

    kernel.run_syscall(workload())
    # The open syscall + the whole read are CPU-held in poll mode.
    expected = (550  # open
                + CostModel().software_total_ns() + 3224)
    assert kernel.cpus.busy_time() == expected


def test_blocking_read_releases_core_during_device_time():
    sim, kernel = make_kernel(SLOW_EXACT, cores=1)
    kernel.create_file("/f", bytes(4096))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_pread(proc, fd, 0, 512)

    kernel.run_syscall(workload())
    cost = CostModel()
    expected = (550
                + cost.software_total_ns()
                + cost.irq_entry_ns
                + cost.context_switch_ns)
    assert kernel.cpus.busy_time() == expected
    assert kernel.irq_count == 1


def test_poll_mode_six_threads_saturate_six_cores():
    """Closed-loop sync readers scale with threads up to the core count."""

    def lookups_per_sec(threads):
        sim, kernel = make_kernel(cores=6)
        kernel.create_file("/f", bytes(1 << 20))
        finished = [0]
        duration = 3_000_000  # 3 ms

        def reader(proc, fd):
            while sim.now < duration:
                yield from kernel.sys_pread(proc, fd, 0, 512)
                finished[0] += 1

        def spawn_all():
            for index in range(threads):
                proc = kernel.spawn_process(f"t{index}")
                fd = yield from kernel.sys_open(proc, "/f")
                sim.spawn(reader(proc, fd))
            return 0

        sim.run_process(spawn_all(), until=duration)
        sim.run(until=duration)
        return finished[0]

    one = lookups_per_sec(1)
    six = lookups_per_sec(6)
    twelve = lookups_per_sec(12)
    assert six > one * 5  # near-linear scaling to the core count
    assert twelve < six * 1.1  # saturated beyond it


def test_fragmented_file_read_issues_multiple_commands():
    sim, kernel = make_kernel(max_extent_blocks=1, trace_device=True)
    kernel.create_file("/f", b"z" * (4 * 4096))
    assert kernel.fs.fragmentation_of(kernel.fs.lookup("/f")) == 4
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        result = yield from kernel.sys_pread(proc, fd, 0, 4 * 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.data == b"z" * (4 * 4096)
    assert kernel.trace.count(opcode="read") == 4


def test_write_path_persists_and_charges():
    sim, kernel = make_kernel()
    kernel.create_file("/f", b"")
    proc = kernel.spawn_process()
    payload = b"w" * 1024

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        written = yield from kernel.sys_pwrite(proc, fd, 0, payload)
        return written

    written = kernel.run_syscall(workload())
    assert written == 1024
    inode = kernel.fs.lookup("/f")
    assert kernel.fs.read_sync(inode, 0, 1024) == payload
    assert inode.size == 1024


def test_open_missing_file_raises():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process()

    def workload():
        yield from kernel.sys_open(proc, "/missing")

    from repro.errors import FileNotFound

    with pytest.raises(FileNotFound):
        kernel.run_syscall(workload())


def test_open_create_flag():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/new", create=True)
        return fd

    fd = kernel.run_syscall(workload())
    assert kernel.fs.exists("/new")
    assert proc.file(fd).path == "/new"


def test_close_invalidates_fd():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(512))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_close(proc, fd)
        return fd

    fd = kernel.run_syscall(workload())
    with pytest.raises(BadFileDescriptor):
        proc.file(fd)


def test_unknown_ioctl_rejected():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(512))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_ioctl(proc, fd, 0xBEEF)

    with pytest.raises(InvalidArgument):
        kernel.run_syscall(workload())


def test_ioctl_dispatches_to_registered_handler():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(512))
    proc = kernel.spawn_process()
    seen = []

    def handler(handler_proc, file, arg):
        seen.append((handler_proc, file.path, arg))
        yield sim.timeout(0)
        return 123

    kernel.ioctl_handlers[0x42] = handler

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        result = yield from kernel.sys_ioctl(proc, fd, 0x42, "hello")
        return result

    assert kernel.run_syscall(workload()) == 123
    assert seen == [(proc, "/f", "hello")]


def test_ftruncate_shrinks():
    sim, kernel = make_kernel()
    kernel.create_file("/f", b"x" * 8192)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_ftruncate(proc, fd, 4096)

    kernel.run_syscall(workload())
    assert kernel.fs.lookup("/f").size == 4096


# ---------------------------------------------------------------------------
# io_uring
# ---------------------------------------------------------------------------


def test_iouring_single_read():
    sim, kernel = make_kernel()
    payload = bytes(range(256)) * 16
    kernel.create_file("/f", payload)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        ring = IoUring(kernel, proc)
        ring.prep_read(fd, 512, 512, user_data="tag")
        cqes = yield from ring.enter(wait_nr=1)
        return cqes

    cqes = kernel.run_syscall(workload())
    assert len(cqes) == 1
    assert cqes[0].user_data == "tag"
    assert cqes[0].result.data == payload[512:1024]


def test_iouring_batch_completes_all():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(64 * 1024))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        ring = IoUring(kernel, proc)
        for index in range(8):
            ring.prep_read(fd, index * 512, 512, user_data=index)
        cqes = yield from ring.enter(wait_nr=8)
        return cqes

    cqes = kernel.run_syscall(workload())
    assert sorted(cqe.user_data for cqe in cqes) == list(range(8))


def test_iouring_batching_amortises_crossings():
    """Per-I/O cost falls as the batch grows (the point of io_uring)."""

    def batch_time(batch):
        sim, kernel = make_kernel()
        kernel.create_file("/f", bytes(1 << 20))
        proc = kernel.spawn_process()

        def workload():
            fd = yield from kernel.sys_open(proc, "/f")
            ring = IoUring(kernel, proc)
            start = sim.now
            for index in range(batch):
                ring.prep_read(fd, index * 4096, 512, user_data=index)
            yield from ring.enter(wait_nr=batch)
            return sim.now - start

        return kernel.run_syscall(workload())

    assert batch_time(8) / 8 < batch_time(1)


def test_iouring_wait_more_than_outstanding_rejected():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(4096))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        ring = IoUring(kernel, proc)
        ring.prep_read(fd, 0, 512)
        yield from ring.enter(wait_nr=2)

    from repro.errors import IoError

    with pytest.raises(IoError):
        kernel.run_syscall(workload())


def test_iouring_queue_depth_enforced():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(4096))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        ring = IoUring(kernel, proc, queue_depth=2)
        ring.prep_read(fd, 0, 512)
        ring.prep_read(fd, 512, 512)
        with pytest.raises(InvalidArgument):
            ring.prep_read(fd, 1024, 512)
        yield from ring.enter(wait_nr=2)

    kernel.run_syscall(workload())


def test_iouring_enter_without_wait_returns_immediately():
    sim, kernel = make_kernel()
    kernel.create_file("/f", bytes(4096))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        ring = IoUring(kernel, proc)
        ring.prep_read(fd, 0, 512)
        first = yield from ring.enter(wait_nr=0)
        # Give the completion time to land, then reap.
        yield sim.timeout(1_000_000)
        second = yield from ring.enter(wait_nr=1)
        return first, second

    first, second = kernel.run_syscall(workload())
    assert first == []
    assert len(second) == 1
