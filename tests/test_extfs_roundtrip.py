"""Property-based ExtFs round-trips against a shadow byte array.

Random write/read/truncate sequences — deliberately unaligned, so the
read-modify-write tails at both ends of a write and spans crossing block
and extent boundaries are all exercised — must agree byte-for-byte with
a plain in-memory shadow.  Runs both the plain and the journaled file
system: journaling changes durability, never the bytes an application
reads back, and a final mid-sequence crash/recovery on the journaled
variant must reproduce the shadow at the last checkpoint-consistent
state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import BlockDevice
from repro.kernel import JournalConfig
from repro.kernel.extfs import BLOCK_SIZE, ExtFs

FILE_SIZE = 24 * BLOCK_SIZE


def make_fs(journaled=False, blocks=512):
    media = BlockDevice(blocks * 8)
    config = JournalConfig(journal_blocks=16, checkpoint_blocks=16) \
        if journaled else None
    return ExtFs(media, journal_config=config)


#: Offsets biased toward block edges, where the RMW tail bugs live.
def edge_biased_offsets(draw):
    block = draw(st.integers(0, FILE_SIZE // BLOCK_SIZE - 1))
    fuzz = draw(st.integers(-3, 3))
    return max(0, min(FILE_SIZE - 1, block * BLOCK_SIZE + fuzz))


@settings(max_examples=60, deadline=None)
@given(data=st.data(), journaled=st.booleans())
def test_unaligned_roundtrip_matches_shadow(data, journaled):
    fs = make_fs(journaled=journaled)
    inode = fs.create("/f")
    shadow = bytearray(FILE_SIZE)
    size = 0
    for step in range(data.draw(st.integers(2, 14))):
        offset = edge_biased_offsets(data.draw)
        action = data.draw(st.sampled_from(["write", "read", "truncate"]))
        if action == "write":
            length = data.draw(st.integers(1, 3 * BLOCK_SIZE))
            length = min(length, FILE_SIZE - offset)
            fill = bytes([(step * 37 + i) % 256 for i in range(length)])
            fs.write_sync(inode, offset, fill)
            shadow[offset : offset + length] = fill
            size = max(size, offset + length)
        elif action == "read":
            length = data.draw(st.integers(0, 3 * BLOCK_SIZE))
            length = min(length, max(0, size - offset))
            assert fs.read_sync(inode, offset, length) == \
                bytes(shadow[offset : offset + length])
        else:
            new_size = data.draw(st.integers(0, size)) if size else 0
            fs.truncate(inode, new_size)
            shadow[new_size:] = bytes(FILE_SIZE - new_size)
            size = new_size
        assert inode.size == size
    assert fs.read_sync(inode, 0, size) == bytes(shadow[:size])


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_journaled_roundtrip_survives_recovery(data):
    """Checkpoint, mutate, reload from media: reads match the shadow."""
    from repro.kernel import fsck, reload_fs

    fs = make_fs(journaled=True)
    inode = fs.create("/f")
    shadow = bytearray(FILE_SIZE)
    size = 0
    for step in range(data.draw(st.integers(1, 8))):
        offset = edge_biased_offsets(data.draw)
        length = min(data.draw(st.integers(1, 2 * BLOCK_SIZE)),
                     FILE_SIZE - offset)
        fill = bytes([(step * 53 + i) % 256 for i in range(length)])
        fs.write_sync(inode, offset, fill)
        shadow[offset : offset + length] = fill
        size = max(size, offset + length)
    # Everything is on media (write_sync is synchronous); commit the
    # metadata and remount from scratch.
    fs.journal.commit_sync()
    report = reload_fs(fs)
    assert report.replayed_txns >= 1
    assert fsck(fs).ok
    recovered = fs.lookup("/f")
    assert recovered.size == size
    assert fs.read_sync(recovered, 0, size) == bytes(shadow[:size])


def test_write_spanning_many_extents_reads_back():
    fs = make_fs()
    inode = fs.create("/f")
    # Force fragmentation: allocate with a small max extent so one write
    # spans several discontiguous extents.
    fs.max_extent_blocks = 2
    blob = bytes(range(256)) * (10 * BLOCK_SIZE // 256)
    fs.write_sync(inode, 7, blob)          # unaligned start, 10 blocks
    assert fs.read_sync(inode, 7, len(blob)) == blob
    assert fs.read_sync(inode, 0, 7) == bytes(7)
    assert len(list(inode.extents)) > 1
