"""Crash consistency: write cache, journal, recovery, fsck, enumeration.

Covers the volatile write cache's FIFO/overlay/tear semantics, the NVMe
device's FLUSH/FUA/power lifecycle, the journal's frame encoding and
torn-tail scan, checkpoints (including the observable TRIM), mount-time
recovery with rollback of uncommitted metadata, the fsck invariant
checker on deliberately corrupted structures, the NVMe-layer extent
cache dropping its snapshots across a crash, the crash-point enumeration
harness itself, and the crash-path observability counters.
"""

import pytest

from repro.core.extent_cache import NvmeExtentCache
from repro.device import NVM_GEN2, BlockDevice
from repro.device.blockdev import SECTOR_SIZE
from repro.device.writecache import WriteCache
from repro.errors import (
    InvalidArgument,
    JournalCorrupt,
    NoSpace,
    PowerLossError,
)
from repro.faults import FaultSpec, fault_injection
from repro.faults.crashpoints import (
    count_flush_boundaries,
    enumerate_crash_points,
    mixed_workload,
)
from repro.kernel import (
    Journal,
    JournalConfig,
    Kernel,
    KernelConfig,
    fsck,
    reload_fs,
    serialize_fs,
)
from repro.kernel.extent import Extent
from repro.kernel.extfs import BLOCK_SIZE
from repro.obs import ObsSession
from repro.sim import RandomStreams, Simulator

CAPACITY = 1 << 18  # sectors


def make_kernel(cache_depth=8, journal=JournalConfig(journal_blocks=32),
                seed=7, fault_plan=None):
    sim = Simulator()
    kernel = Kernel(sim, NVM_GEN2, KernelConfig(
        seed=seed, capacity_sectors=CAPACITY,
        write_cache_depth=cache_depth, journal=journal,
        fault_plan=fault_plan))
    return sim, kernel


def open_file(kernel, proc, path, create=True):
    return kernel.run_syscall(kernel.sys_open(proc, path, create=create))


# ---------------------------------------------------------------------------
# WriteCache
# ---------------------------------------------------------------------------


def sector_bytes(tag, count=1):
    return bytes([tag]) * (SECTOR_SIZE * count)


def test_write_cache_fifo_eviction_order():
    media = BlockDevice(64)
    cache = WriteCache(media, depth=2)
    cache.write(0, sector_bytes(1))
    cache.write(8, sector_bytes(2))
    assert media.read(0, 1) == bytes(SECTOR_SIZE)  # nothing durable yet
    cache.write(16, sector_bytes(3))               # evicts the oldest
    assert cache.evictions == 1
    assert media.read(0, 1) == sector_bytes(1)     # oldest destaged first
    assert media.read(8, 1) == bytes(SECTOR_SIZE)  # newer ones still cached


def test_write_cache_read_overlays_pending_records():
    media = BlockDevice(64)
    cache = WriteCache(media, depth=4)
    media.write(0, sector_bytes(9, 2))
    cache.write(1, sector_bytes(5))
    # The cached sector shadows media; its neighbours read through.
    assert cache.read(0, 2) == sector_bytes(9) + sector_bytes(5)
    # Later records win over earlier ones at the same LBA.
    cache.write(1, sector_bytes(6))
    assert cache.read(1, 1) == sector_bytes(6)


def test_write_cache_flush_destages_everything_in_order():
    media = BlockDevice(64)
    cache = WriteCache(media, depth=4)
    cache.write(0, sector_bytes(1))
    cache.write(0, sector_bytes(2))
    assert cache.flush() == 2
    assert len(cache) == 0
    assert media.read(0, 1) == sector_bytes(2)
    assert cache.flushed_records == 2


def test_write_cache_power_loss_drops_and_tears_only_oldest():
    media = BlockDevice(64)
    cache = WriteCache(media, depth=8)
    cache.write(0, sector_bytes(1, 4))   # oldest, multi-sector: may tear
    cache.write(16, sector_bytes(2, 4))  # younger: must vanish entirely
    rng = RandomStreams(3).stream("power")
    info = cache.power_loss(rng=rng, tear=True)
    assert info["dropped"] == 2
    assert 1 <= info["torn_sectors"] < 4
    assert info["torn_lba"] == 0
    torn = media.read(0, 4)
    cut = info["torn_sectors"] * SECTOR_SIZE
    assert torn[:cut] == sector_bytes(1, 4)[:cut]   # persisted prefix
    assert torn[cut:] == bytes(4 * SECTOR_SIZE - cut)  # rest never landed
    assert media.read(16, 4) == bytes(4 * SECTOR_SIZE)


def test_write_cache_single_sector_never_tears():
    media = BlockDevice(64)
    cache = WriteCache(media, depth=8)
    cache.write(0, sector_bytes(1))
    info = cache.power_loss(rng=RandomStreams(3).stream("power"), tear=True)
    assert info == {"dropped": 1, "torn_sectors": 0, "torn_lba": -1}
    assert media.read(0, 1) == bytes(SECTOR_SIZE)


def test_write_cache_rejects_zero_depth():
    with pytest.raises(InvalidArgument):
        WriteCache(BlockDevice(64), depth=0)


# ---------------------------------------------------------------------------
# NVMe power lifecycle
# ---------------------------------------------------------------------------


def test_powered_off_device_rejects_submissions():
    sim, kernel = make_kernel()
    kernel.device.power_loss()
    from repro.device import NvmeCommand

    with pytest.raises(PowerLossError):
        kernel.device.submit(NvmeCommand("read", 0, 1))
    kernel.device.power_on()
    assert not kernel.device.powered_off
    assert kernel.device.power_cycles == 1


def test_fsync_flushes_cache_and_commits_journal():
    sim, kernel = make_kernel(cache_depth=8)
    proc = kernel.spawn_process("t")
    fd = open_file(kernel, proc, "/f")
    kernel.run_syscall(kernel.sys_pwrite(proc, fd, 0, b"x" * 4096))
    assert len(kernel.device.write_cache) > 0
    assert kernel.fs.journal.pending_txns > 0
    kernel.run_syscall(kernel.sys_fsync(proc, fd))
    assert len(kernel.device.write_cache) == 0
    assert kernel.fs.journal.pending_txns == 0
    assert kernel.device.flushes == 1
    assert kernel.fsyncs == 1
    assert kernel.fs.journal.txns_committed > 0


# ---------------------------------------------------------------------------
# Journal framing, scan, checkpoint
# ---------------------------------------------------------------------------


def make_journal(journal_blocks=8, checkpoint_blocks=4, capacity=4096,
                 **kwargs):
    media = BlockDevice(capacity)
    journal = Journal(media, JournalConfig(
        journal_blocks=journal_blocks, checkpoint_blocks=checkpoint_blocks,
        **kwargs))
    return media, journal


def test_journal_config_validation():
    with pytest.raises(InvalidArgument):
        JournalConfig(journal_blocks=0)
    with pytest.raises(InvalidArgument):
        JournalConfig(checkpoint_blocks=0)
    with pytest.raises(InvalidArgument):
        JournalConfig(checkpoint_every_txns=-1)
    with pytest.raises(InvalidArgument):
        Journal(BlockDevice(64), JournalConfig())  # device too small


def test_journal_log_requires_open_txn():
    _media, journal = make_journal()
    with pytest.raises(InvalidArgument):
        journal.log({"op": "create"})
    with pytest.raises(InvalidArgument):
        journal.end()


def test_journal_nested_txns_collapse_and_empty_txns_vanish():
    _media, journal = make_journal()
    journal.begin()
    journal.begin()
    journal.log({"op": "create", "path": "/a", "ino": 2})
    journal.end()
    assert journal.pending_txns == 0      # still inside the outer scope
    journal.log({"op": "size", "ino": 2, "size": 10})
    journal.end()
    assert journal.pending_txns == 1      # one txn, both records
    journal.begin()
    journal.end()                          # no records: no txn assigned
    assert journal.pending_txns == 1
    assert journal.next_seq == 2


def test_journal_commit_scan_roundtrip():
    _media, journal = make_journal()
    records = [{"op": "create", "path": "/a", "ino": 2},
               {"op": "size", "ino": 2, "size": 123}]
    journal.begin()
    for record in records:
        journal.log(record)
    journal.end()
    assert journal.commit_sync() == 1
    txns, discarded, end_sector = journal.scan()
    assert txns == [(1, records)]
    assert discarded == 0
    assert end_sector == journal.head_sector


def test_journal_scan_discards_torn_frame():
    media, journal = make_journal()
    journal.begin()
    journal.log({"op": "create", "path": "/a", "ino": 2})
    journal.end()
    journal.begin()
    journal.log({"op": "alloc", "ino": 2,
                 "extents": [[i, 100 + i, 1] for i in range(120)]})
    journal.end()
    frames = journal.encode_pending()
    assert len(frames[1][1]) > SECTOR_SIZE  # the frame we are tearing
    # First frame lands whole; the second loses its final sector (where
    # the commit marker lives) — a torn journal write.
    media.write(frames[0][0], frames[0][1])
    torn = frames[1][1][:-SECTOR_SIZE]
    media.write(frames[1][0], torn)
    txns, discarded, end_sector = journal.scan()
    assert [seq for seq, _r in txns] == [1]
    assert discarded == 1
    assert end_sector == len(frames[0][1]) // SECTOR_SIZE


def test_journal_scan_discards_corrupt_payload():
    media, journal = make_journal()
    journal.begin()
    journal.log({"op": "create", "path": "/a", "ino": 2})
    journal.end()
    journal.commit_sync()
    lba = journal.journal_start
    frame = bytearray(media.read(lba, 1))
    frame[24] ^= 0xFF                      # flip a payload byte
    media.write(lba, bytes(frame))
    txns, discarded, _end = journal.scan()
    assert txns == []
    assert discarded == 1


def test_journal_overflow_raises_no_space():
    _media, journal = make_journal(journal_blocks=1)
    blob = [{"op": "alloc", "ino": 2,
             "extents": [[i, 100 + i, 1] for i in range(400)]}]
    journal.begin()
    for record in blob:
        journal.log(record)
    journal.end()
    with pytest.raises(NoSpace):
        journal.encode_pending()
    assert not journal.fits_pending()


def test_checkpoint_flips_slot_trims_log_and_absorbs_pending():
    media, journal = make_journal()
    journal.begin()
    journal.log({"op": "create", "path": "/a", "ino": 2})
    journal.end()
    journal.commit_sync()
    journal.begin()
    journal.log({"op": "create", "path": "/b", "ino": 3})
    journal.end()                          # pending, never committed
    state = {"version": 1, "next_ino": 4, "inodes": [], "tree": []}
    discards_before = media.discards
    journal.checkpoint_sync(state)
    assert journal.active_slot == 1
    assert journal.head_sector == 0
    assert journal.pending_txns == 0       # absorbed, not lost
    assert journal.ckpt_seq == 2
    assert media.discards > discards_before  # TRIM is observable
    superblock = journal.read_superblock()
    assert superblock["active_slot"] == 1
    assert superblock["ckpt_seq"] == 2
    assert journal.read_checkpoint(superblock) == state
    assert journal.scan() == ([], 0, 0)    # log is empty again


def test_corrupt_superblock_detected():
    media, journal = make_journal()
    journal.checkpoint_sync({"version": 1})
    sector = bytearray(media.read(0, 1))
    sector[20] ^= 0xFF
    media.write(0, bytes(sector))
    with pytest.raises(JournalCorrupt):
        journal.read_superblock()


# ---------------------------------------------------------------------------
# Crash + recovery through the kernel
# ---------------------------------------------------------------------------


def write_file(kernel, proc, path, data, sync=True):
    fd = open_file(kernel, proc, path)
    kernel.run_syscall(kernel.sys_pwrite(proc, fd, 0, data))
    if sync:
        kernel.run_syscall(kernel.sys_fsync(proc, fd))
    return fd


def test_recover_replays_committed_metadata():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    payload = bytes(range(256)) * 32       # 8 KiB
    write_file(kernel, proc, "/keep", payload)
    kernel.crash()
    assert kernel.device.powered_off
    report = kernel.recover()
    assert report.replayed_txns > 0
    assert kernel.recoveries == 1
    inode = kernel.fs.lookup("/keep")
    assert kernel.fs.read_sync(inode, 0, inode.size) == payload
    assert fsck(kernel.fs).ok


def test_recover_rolls_back_uncommitted_tail():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    keep = b"k" * 4096
    fd = write_file(kernel, proc, "/keep", keep)
    # Post-fsync, never-synced mutations: all must roll back.
    kernel.run_syscall(kernel.sys_ftruncate(proc, fd, 1024))
    write_file(kernel, proc, "/lost", b"l" * 4096, sync=False)
    kernel.run_syscall(kernel.sys_rename(proc, "/keep", "/renamed"))
    kernel.crash()
    kernel.recover()
    assert fsck(kernel.fs).ok
    inode = kernel.fs.lookup("/keep")      # rename rolled back
    assert inode.size == len(keep)         # truncate rolled back
    assert kernel.fs.read_sync(inode, 0, inode.size) == keep
    for ghost in ("/lost", "/renamed"):
        with pytest.raises(Exception):
            kernel.fs.lookup(ghost)


def test_recover_survives_unlink_and_reuse_cycle():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    write_file(kernel, proc, "/a", b"a" * 8192)
    kernel.run_syscall(kernel.sys_unlink(proc, "/a"))
    write_file(kernel, proc, "/b", b"b" * 8192)  # fsync commits the unlink
    kernel.crash()
    kernel.recover()
    assert fsck(kernel.fs).ok
    with pytest.raises(Exception):
        kernel.fs.lookup("/a")
    inode = kernel.fs.lookup("/b")
    assert kernel.fs.read_sync(inode, 0, inode.size) == b"b" * 8192


def test_recover_requires_a_journal():
    sim, kernel = make_kernel(journal=None, cache_depth=0)
    kernel.crash()
    kernel.device.power_on()
    with pytest.raises(InvalidArgument):
        reload_fs(kernel.fs)


def test_syscalls_surface_power_loss():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    fd = write_file(kernel, proc, "/f", b"x" * 4096)
    kernel.crash()
    with pytest.raises(PowerLossError):
        kernel.run_syscall(kernel.sys_pwrite(proc, fd, 0, b"y" * 4096))


def test_extent_cache_drops_snapshots_across_recovery():
    sim, kernel = make_kernel()
    cache = NvmeExtentCache(kernel.fs)
    proc = kernel.spawn_process("t")
    write_file(kernel, proc, "/f", b"x" * 8192)
    inode = kernel.fs.lookup("/f")
    entry = cache.install(inode)
    assert entry.valid
    assert cache.entry(inode) is entry
    kernel.crash()
    kernel.recover()
    # Every snapshot is gone: chains must renegotiate via EEXTENT.
    assert not entry.valid
    assert cache.entry(kernel.fs.lookup("/f")) is None
    assert cache.invalidations >= 1
    # Reinstall works against the recovered tree.
    fresh = cache.install(kernel.fs.lookup("/f"))
    assert fresh.valid


def test_power_cut_mid_fsync_rolls_back_cleanly():
    spec = FaultSpec(seed=11, power_loss_after_flushes=1)
    with fault_injection(spec):
        sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    fd = open_file(kernel, proc, "/f")
    kernel.run_syscall(kernel.sys_pwrite(proc, fd, 0, b"x" * 4096))
    # The cut fires the instant the FLUSH completes — data is durable,
    # but the journal commit never happens.
    with pytest.raises(PowerLossError):
        kernel.run_syscall(kernel.sys_fsync(proc, fd))
    report = kernel.recover()
    assert report.replayed_txns == 0
    assert fsck(kernel.fs).ok
    with pytest.raises(Exception):
        kernel.fs.lookup("/f")             # creation was never committed


# ---------------------------------------------------------------------------
# fsck catches seeded corruption
# ---------------------------------------------------------------------------


def corrupted_fs():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    write_file(kernel, proc, "/f", b"x" * 8192)
    return kernel.fs


def test_fsck_flags_overlapping_extents():
    fs = corrupted_fs()
    victim = fs.lookup("/f")
    ghost = fs.create("/ghost")
    first = next(iter(victim.extents))
    ghost.extents.add(Extent(0, first.phys_block, 1))
    ghost.size = BLOCK_SIZE
    report = fsck(fs)
    assert not report.ok
    assert any("overlap" in v for v in report.violations)


def test_fsck_flags_extent_past_eof():
    fs = corrupted_fs()
    inode = fs.lookup("/f")
    inode.size = 100                       # two blocks remain mapped
    report = fsck(fs)
    assert not report.ok
    assert any("EOF" in v for v in report.violations)


def test_fsck_flags_out_of_bounds_extent():
    fs = corrupted_fs()
    inode = fs.lookup("/f")
    inode.extents.add(Extent(2, fs.total_blocks + 5, 1))
    inode.size = 3 * BLOCK_SIZE
    report = fsck(fs)
    assert not report.ok
    assert any("outside" in v for v in report.violations)


def test_fsck_flags_allocator_skew():
    fs = corrupted_fs()
    runs = fs._allocator.allocate(1, 1, None)   # leak a block
    assert runs
    report = fsck(fs)
    assert not report.ok
    assert any("allocator" in v for v in report.violations)


def test_fsck_clean_on_healthy_fs():
    report = fsck(corrupted_fs())
    assert report.ok
    assert report.checks >= 6


# ---------------------------------------------------------------------------
# Crash-point enumeration (the tentpole acceptance criterion)
# ---------------------------------------------------------------------------


def test_mixed_workload_has_multiple_flush_boundaries():
    ops = mixed_workload()
    assert count_flush_boundaries(ops) == 4


def test_every_flush_boundary_recovers_consistently():
    results = enumerate_crash_points(at="flush")
    assert len(results) == 4
    for result in results:
        assert result.ok, result.describe()
    # Later cuts see strictly more committed history.
    replayed = [r.replayed_txns for r in results]
    assert replayed == sorted(replayed)


def test_every_op_boundary_recovers_consistently_with_torn_writes():
    results = enumerate_crash_points(at="op", tear=True)
    assert len(results) == len(mixed_workload())
    for result in results:
        assert result.ok, result.describe()
    # The cache was actually holding data at some cut points...
    assert any(r.dropped_writes > 0 for r in results)
    # ...and the tear machinery actually tore something.
    assert any(r.torn_sectors > 0 for r in results)


def test_sync_commit_write_through_loses_nothing():
    journal = JournalConfig(journal_blocks=32, sync_commit=True)
    results = enumerate_crash_points(at="op", cache_depth=0,
                                     journal=journal)
    for result in results:
        assert result.ok, result.describe()
        # Every completed op is durable: recovery loses zero operations.
        assert result.commit_index == result.ops_completed


# ---------------------------------------------------------------------------
# Zero-length reads (satellite)
# ---------------------------------------------------------------------------


def test_pread_zero_length_returns_empty():
    sim, kernel = make_kernel(journal=None, cache_depth=0)
    proc = kernel.spawn_process("t")
    fd = open_file(kernel, proc, "/f")
    kernel.run_syscall(kernel.sys_pwrite(proc, fd, 0, b"x" * 4096))
    result = kernel.run_syscall(kernel.sys_pread(proc, fd, 100, 0))
    assert result.data == b""
    assert result.final_offset == 100
    with pytest.raises(InvalidArgument):
        kernel.run_syscall(kernel.sys_pread(proc, fd, 0, -1))


def test_read_sync_zero_and_negative_lengths():
    sim, kernel = make_kernel(journal=None, cache_depth=0)
    inode = kernel.fs.create("/f")
    kernel.fs.write_sync(inode, 0, b"x" * 100)
    assert kernel.fs.read_sync(inode, 40, 0) == b""
    with pytest.raises(InvalidArgument):
        kernel.fs.read_sync(inode, 0, -5)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_crash_path_metrics_reconcile():
    with ObsSession() as obs:
        sim, kernel = make_kernel()
        proc = kernel.spawn_process("t")
        write_file(kernel, proc, "/a", b"a" * 8192)
        write_file(kernel, proc, "/b", b"b" * 4096)
        kernel.fs.checkpoint_sync()
        kernel.crash()
        kernel.recover()
        fsck(kernel.fs)
    registry = obs.registry
    assert registry.get("nvme_flushes_total").value() == \
        kernel.device.flushes == 2
    assert registry.get("power_losses_total").value() == 1
    journal = kernel.fs.journal
    assert registry.get("journal_commits_total").value() > 0
    assert registry.get("journal_txns_total").value(outcome="committed") \
        == journal.txns_committed
    assert registry.get("journal_checkpoints_total").value() >= 1
    assert registry.get("fsck_runs_total").value() == 1
    assert registry.get("fsck_violations_total").value() == 0
    # Sector traffic is attributed per opcode, discards included (the
    # checkpoint TRIMmed the journal region).
    sectors = registry.get("blockdev_sectors_total")
    assert sectors.value(op="write") > 0
    assert sectors.value(op="discard") > 0


def test_serialize_fs_is_deterministic():
    sim, kernel = make_kernel()
    proc = kernel.spawn_process("t")
    write_file(kernel, proc, "/x", b"x" * 4096)
    first = serialize_fs(kernel.fs)
    second = serialize_fs(kernel.fs)
    assert first == second
    assert first["inodes"][0]["ino"] == 1
