"""Unit and property tests for BPF maps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.ebpf import ArrayMap, HashMap


def test_hash_map_basic_cycle():
    m = HashMap(key_size=4, value_size=8, max_entries=4)
    key = b"\x01\x02\x03\x04"
    assert m.lookup(key) is None
    m.update(key, b"\x00" * 8)
    assert m.lookup(key) == bytearray(8)
    assert m.delete(key)
    assert not m.delete(key)
    assert m.lookup(key) is None


def test_hash_map_value_buffer_is_live():
    m = HashMap(4, 8, 4)
    m.update(b"AAAA", b"\x00" * 8)
    buf = m.lookup(b"AAAA")
    buf[0] = 0xFF
    assert m.lookup(b"AAAA")[0] == 0xFF


def test_hash_map_key_size_enforced():
    m = HashMap(4, 8, 4)
    with pytest.raises(InvalidArgument):
        m.lookup(b"AB")
    with pytest.raises(InvalidArgument):
        m.update(b"ABCDE", b"\x00" * 8)


def test_hash_map_value_size_enforced():
    m = HashMap(4, 8, 4)
    with pytest.raises(InvalidArgument):
        m.update(b"AAAA", b"\x00" * 7)


def test_hash_map_capacity_enforced():
    m = HashMap(4, 8, 2)
    m.update(b"AAAA", b"\x00" * 8)
    m.update(b"BBBB", b"\x00" * 8)
    with pytest.raises(InvalidArgument, match="full"):
        m.update(b"CCCC", b"\x00" * 8)
    # Updating an existing key is always allowed.
    m.update(b"AAAA", b"\x01" * 8)


def test_array_map_index_semantics():
    m = ArrayMap(value_size=8, max_entries=4)
    assert m.lookup((3).to_bytes(4, "little")) == bytearray(8)
    assert m.lookup((4).to_bytes(4, "little")) is None
    m.update((2).to_bytes(4, "little"), (99).to_bytes(8, "little"))
    assert int.from_bytes(m.lookup_index(2), "little") == 99


def test_array_map_delete_zeroes():
    m = ArrayMap(value_size=8, max_entries=4)
    m.update((1).to_bytes(4, "little"), (7).to_bytes(8, "little"))
    assert m.delete((1).to_bytes(4, "little"))
    assert m.lookup_index(1) == bytearray(8)
    assert not m.delete((9).to_bytes(4, "little"))


def test_array_map_out_of_range_update():
    m = ArrayMap(value_size=8, max_entries=4)
    with pytest.raises(InvalidArgument):
        m.update((4).to_bytes(4, "little"), b"\x00" * 8)


def test_bad_sizes_rejected():
    with pytest.raises(InvalidArgument):
        HashMap(0, 8, 4)
    with pytest.raises(InvalidArgument):
        ArrayMap(value_size=8, max_entries=0)


@given(
    st.dictionaries(
        st.binary(min_size=4, max_size=4),
        st.binary(min_size=8, max_size=8),
        max_size=32,
    )
)
def test_hash_map_matches_dict_reference(entries):
    m = HashMap(4, 8, 64)
    for key, value in entries.items():
        m.update(key, value)
    assert len(m) == len(entries)
    for key, value in entries.items():
        assert bytes(m.lookup(key)) == value
    assert sorted(m.keys()) == sorted(entries.keys())
