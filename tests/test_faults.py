"""The fault-plan subsystem: injection, retry/backoff, graceful degradation.

Covers the spec/plan unit semantics (episodes, cooldown, windows,
staleness, determinism), the NVMe driver's retry policy on the plain read
and write paths, the chain engine's in-IRQ retries and fallback to user
space, the interaction with the resubmission bound, and the end-to-end
determinism + metrics-reconciliation acceptance criteria.
"""

import pytest

from chainutil import build_machine, install_walker, linked_file_bytes
from repro.device import NvmeCommand
from repro.errors import InvalidArgument, IoError
from repro.faults import (
    FAULT_NET_DELAY,
    FAULT_NET_DROP,
    FAULT_STALE,
    FAULT_TIMEOUT,
    FAULT_TRANSIENT,
    FaultPlan,
    FaultSpec,
    fault_injection,
    get_default_fault_spec,
    parse_fault_spec,
)
from repro.kernel import NvmeRetryPolicy, ReadResult
from repro.obs import ObsSession

ORDER = [0, 1, 2, 3]

#: Zero-rate plan: arms the retry machinery without random faults, so
#: tests drive failures deterministically through ``plan.inject``.
IDLE = FaultSpec(seed=1)


def lba_of_block(kernel, path, block):
    inode = kernel.fs.lookup(path)
    return inode.extents.lookup(block) * 8


# ---------------------------------------------------------------------------
# FaultSpec + parse_fault_spec
# ---------------------------------------------------------------------------


def test_spec_rejects_bad_rates():
    with pytest.raises(InvalidArgument, match="read_error_rate"):
        FaultSpec(read_error_rate=1.5)
    with pytest.raises(InvalidArgument, match="sum"):
        FaultSpec(read_error_rate=0.6, timeout_rate=0.3, spike_rate=0.2)
    with pytest.raises(InvalidArgument, match="error_burst"):
        FaultSpec(error_burst=0)
    with pytest.raises(InvalidArgument, match="spike_factor"):
        FaultSpec(spike_factor=0.5)
    with pytest.raises(InvalidArgument, match=">= 0"):
        FaultSpec(stale_interval_ns=-1)


def test_spec_window():
    spec = FaultSpec(read_error_rate=0.1, window_start_ns=100,
                     window_end_ns=200)
    assert not spec.active(99)
    assert spec.active(100)
    assert spec.active(199)
    assert not spec.active(200)
    open_ended = FaultSpec(read_error_rate=0.1, window_start_ns=100)
    assert open_ended.active(10 ** 12)


def test_parse_fault_spec():
    spec = parse_fault_spec(
        "seed=7, read_error_rate=0.01, error_burst=2, timeout_rate=0.001")
    assert spec == FaultSpec(seed=7, read_error_rate=0.01, error_burst=2,
                             timeout_rate=0.001)
    assert isinstance(spec.seed, int) and isinstance(spec.error_burst, int)


def test_parse_fault_spec_rejects_garbage():
    with pytest.raises(InvalidArgument, match="unknown fault-plan key"):
        parse_fault_spec("read_rate=0.1")
    with pytest.raises(InvalidArgument, match="want key=value"):
        parse_fault_spec("read_error_rate")
    with pytest.raises(InvalidArgument, match="bad fault-plan value"):
        parse_fault_spec("read_error_rate=lots")
    with pytest.raises(InvalidArgument, match="in \\[0, 1\\]"):
        parse_fault_spec("read_error_rate=2.0")


def test_default_spec_plumbing():
    assert get_default_fault_spec() is None
    spec = FaultSpec(seed=3)
    with fault_injection(spec):
        assert get_default_fault_spec() is spec
        sim, kernel, bpf = build_machine()
        assert kernel.fault_plan is not None
        assert kernel.retry_enabled
    assert get_default_fault_spec() is None
    _, plain_kernel, _ = build_machine()
    assert plain_kernel.fault_plan is None
    assert not plain_kernel.retry_enabled


# ---------------------------------------------------------------------------
# FaultPlan decisions
# ---------------------------------------------------------------------------


def read_cmd(lba):
    return NvmeCommand("read", lba, 8)


def test_episode_burst_then_guaranteed_recovery():
    plan = FaultPlan(FaultSpec(read_error_rate=1.0, error_burst=3))
    decisions = [plan.media_decision(read_cmd(5), 0) for _ in range(5)]
    # Three consecutive failures, then the cooldown guarantees a success,
    # then (rate 1.0) a fresh episode begins.
    assert decisions == [FAULT_TRANSIENT] * 3 + [None, FAULT_TRANSIENT]
    assert plan.injected[FAULT_TRANSIENT] == 4


def test_inject_opens_episode_without_rates():
    plan = FaultPlan(IDLE)
    plan.inject(9, times=2)
    assert plan.media_decision(read_cmd(9), 0) == FAULT_TRANSIENT
    assert plan.media_decision(read_cmd(9), 0) == FAULT_TRANSIENT
    assert plan.media_decision(read_cmd(9), 0) is None   # cooldown
    assert plan.media_decision(read_cmd(9), 0) is None   # genuinely healthy
    assert plan.media_decision(read_cmd(10), 0) is None  # other LBA untouched
    with pytest.raises(InvalidArgument):
        plan.inject(9, kind="spike")
    with pytest.raises(InvalidArgument):
        plan.inject(9, times=0)


def test_window_gates_random_draws():
    spec = FaultSpec(read_error_rate=1.0, window_start_ns=1000,
                     window_end_ns=2000)
    plan = FaultPlan(spec)
    assert plan.media_decision(read_cmd(1), 0) is None
    assert plan.media_decision(read_cmd(1), 1500) == FAULT_TRANSIENT
    # The cooldown from the in-window episode is consumed...
    assert plan.media_decision(read_cmd(1), 1600) is None
    # ...and past the window nothing is drawn at all.
    assert plan.media_decision(read_cmd(1), 2500) is None


def test_same_seed_same_decisions():
    spec = FaultSpec(seed=11, read_error_rate=0.2, timeout_rate=0.1,
                     spike_rate=0.1)

    def sequence(kernel_seed):
        plan = FaultPlan(spec, kernel_seed=kernel_seed)
        return [plan.media_decision(read_cmd(lba % 7), lba * 10)
                for lba in range(200)]

    assert sequence(4) == sequence(4)
    assert sequence(4) != sequence(5)


def test_stale_due_fixed_interval_steps():
    plan = FaultPlan(FaultSpec(stale_interval_ns=100))
    assert not plan.stale_due(50)
    assert plan.stale_due(150)
    assert not plan.stale_due(150)       # one observation per deadline
    assert plan.stale_due(400)           # catches up in fixed steps...
    assert not plan.stale_due(450)       # ...without double-firing
    assert plan.injected[FAULT_STALE] == 2
    assert plan.total_injected() == 2


# ---------------------------------------------------------------------------
# NvmeRetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_validation_and_backoff():
    policy = NvmeRetryPolicy(backoff_base_ns=1000, backoff_multiplier=2.0)
    assert [policy.backoff_ns(n) for n in (1, 2, 3)] == [1000, 2000, 4000]
    with pytest.raises(InvalidArgument):
        NvmeRetryPolicy(max_retries=-1)
    with pytest.raises(InvalidArgument):
        NvmeRetryPolicy(backoff_multiplier=0.5)


# ---------------------------------------------------------------------------
# Driver retry on the plain read/write paths
# ---------------------------------------------------------------------------


def test_transient_read_recovers():
    sim, kernel, bpf = build_machine(fault_plan=IDLE)
    payload = bytes(range(256)) * 16
    kernel.create_file("/f", payload)
    kernel.fault_plan.inject(lba_of_block(kernel, "/f", 0), times=1)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        result = yield from kernel.sys_pread(proc, fd, 0, 512)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.data == payload[:512]
    assert kernel.nvme_retries == 1
    assert kernel.device.media_errors == 1


def test_retry_exhaustion_surfaces_io_error():
    sim, kernel, bpf = build_machine(fault_plan=IDLE)
    kernel.create_file("/f", bytes(4096))
    # Default policy: 4 retries = 5 attempts; fail all five.
    kernel.fault_plan.inject(lba_of_block(kernel, "/f", 0), times=5)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_pread(proc, fd, 0, 512)

    with pytest.raises(IoError, match="failed after 5 attempts"):
        kernel.run_syscall(workload())
    assert kernel.nvme_retries == 4


def test_backoff_charges_simulated_time():
    policy = NvmeRetryPolicy(backoff_base_ns=50_000,
                             backoff_multiplier=2.0)
    sim, kernel, bpf = build_machine(fault_plan=IDLE, retry=policy)
    kernel.create_file("/f", bytes(4096))
    kernel.fault_plan.inject(lba_of_block(kernel, "/f", 0), times=2)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        start = sim.now
        yield from kernel.sys_pread(proc, fd, 0, 512)
        return sim.now - start

    elapsed = kernel.run_syscall(workload())
    # Two retries: 50 us + 100 us of backoff, plus three service times.
    assert elapsed >= 150_000 + 3 * kernel.model.read_ns


def test_timeout_recovers_after_watchdog():
    sim, kernel, bpf = build_machine(fault_plan=IDLE)
    kernel.create_file("/f", bytes(4096))
    kernel.fault_plan.inject(lba_of_block(kernel, "/f", 0),
                             kind=FAULT_TIMEOUT, times=1)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        start = sim.now
        result = yield from kernel.sys_pread(proc, fd, 0, 512)
        return result, sim.now - start

    result, elapsed = kernel.run_syscall(workload())
    assert result.ok
    assert kernel.nvme_timeouts == 1
    assert kernel.device.timeouts == 1
    # The faulted attempt held its slot for the full watchdog interval.
    assert kernel.device.command_timeout_ns > 0
    assert elapsed >= kernel.device.command_timeout_ns


def test_transient_write_recovers():
    sim, kernel, bpf = build_machine(fault_plan=IDLE)
    kernel.create_file("/f", bytes(4096))
    kernel.fault_plan.inject(lba_of_block(kernel, "/f", 0), times=1,
                             opcode="write")
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_pwrite(proc, fd, 0, b"y" * 512)
        result = yield from kernel.sys_pread(proc, fd, 0, 512)
        return result

    result = kernel.run_syscall(workload())
    assert result.data == b"y" * 512
    assert kernel.nvme_retries == 1


def test_no_plan_leaves_results_identical():
    """Arming an all-zero-rate plan must not perturb the simulation."""

    def run(**config_kwargs):
        sim, kernel, bpf = build_machine(**config_kwargs)
        kernel.create_file("/list", linked_file_bytes(ORDER))
        proc, fd = install_walker(sim, kernel, bpf, "/list")

        def workload():
            result = yield from bpf.read_chain(proc, fd, 0, 4096)
            return result

        result = kernel.run_syscall(workload())
        return result.value, result.hops, sim.now

    assert run() == run(fault_plan=IDLE)


# ---------------------------------------------------------------------------
# Chain-path recovery and degradation
# ---------------------------------------------------------------------------


def make_faulted_chain(times, fail_block=2, **config_kwargs):
    config_kwargs.setdefault("fault_plan", IDLE)
    sim, kernel, bpf = build_machine(**config_kwargs)
    kernel.create_file("/list", linked_file_bytes(ORDER))
    kernel.fault_plan.inject(lba_of_block(kernel, "/list", fail_block),
                             times=times)
    proc, fd = install_walker(sim, kernel, bpf, "/list")
    return sim, kernel, bpf, proc, fd


def test_chain_retries_transient_hop_in_irq():
    sim, kernel, bpf, proc, fd = make_faulted_chain(times=2)

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.value == 1000 + ORDER[-1]
    assert bpf.engine.fault_retries == 2
    assert bpf.engine.fault_fallbacks == 0
    assert kernel.nvme_retries == 2
    # Every retry is charged against the per-pid resubmission accounting
    # exactly like a program-driven hop: 3 recycles + 2 fault retries.
    assert bpf.accounting.totals[proc.pid] == len(ORDER) - 1 + 2


def test_chain_falls_back_to_user_space_when_budget_exhausted():
    sim, kernel, bpf, proc, fd = make_faulted_chain(times=10)

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    # Not killed with EIO: handed back with the continuation.
    assert result.status == ReadResult.FAULT_FALLBACK
    assert result.final_offset == 2 * 4096
    assert result.scratch is not None
    assert bpf.engine.fault_fallbacks == 1
    # Retries stopped at the policy budget (4), not at episode length.
    assert bpf.engine.fault_retries == 4


def test_robust_read_recovers_through_fallbacks():
    sim, kernel, bpf, proc, fd = make_faulted_chain(times=10)

    def workload():
        result = yield from bpf.read_chain_robust(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.value == 1000 + ORDER[-1]
    assert bpf.engine.fault_fallbacks >= 1
    # All ten injected failures were consumed by bounded retries.
    assert kernel.fault_plan.injected[FAULT_TRANSIENT] == 10


def test_robust_read_raises_when_faults_never_recover():
    sim, kernel, bpf, proc, fd = make_faulted_chain(times=10 ** 6)

    def workload():
        yield from bpf.read_chain_robust(proc, fd, 0, 4096, max_retries=3)

    with pytest.raises(IoError, match="did not recover"):
        kernel.run_syscall(workload())


def test_resubmission_bound_limits_fault_retries():
    # Bound of 4 hops: the clean walk needs 3 recycles, so by the time
    # block 2 faults only one more resubmission is affordable — the bound
    # cuts the retry loop short well before the policy budget of 4.
    sim, kernel, bpf, proc, fd = make_faulted_chain(times=10,
                                                    max_chain_hops=4)

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.status == ReadResult.FAULT_FALLBACK
    assert 0 < bpf.engine.fault_retries < 4


def test_fault_stale_invalidation_recovers_via_refresh():
    spec = FaultSpec(seed=2, stale_interval_ns=40_000)
    sim, kernel, bpf = build_machine(fault_plan=spec)
    kernel.create_file("/list", linked_file_bytes(ORDER))
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        results = []
        for _ in range(20):
            result = yield from bpf.read_chain_robust(proc, fd, 0, 4096)
            results.append(result.value)
        return results

    values = kernel.run_syscall(workload())
    assert values == [1000 + ORDER[-1]] * 20
    assert kernel.fault_plan.injected[FAULT_STALE] > 0
    assert bpf.cache.invalidations >= kernel.fault_plan.injected[FAULT_STALE]
    assert bpf.engine.extent_aborts > 0


# ---------------------------------------------------------------------------
# Acceptance: determinism and metrics reconciliation
# ---------------------------------------------------------------------------

STRESS_SPEC = FaultSpec(seed=13, read_error_rate=0.08, error_burst=2,
                        timeout_rate=0.02, spike_rate=0.05, spike_factor=4.0)


def run_faulted_workload(iterations=40):
    """A chained-read workload under a moderately hostile plan."""
    sim, kernel, bpf = build_machine(fault_plan=STRESS_SPEC)
    kernel.create_file("/list", linked_file_bytes(ORDER))
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        completed = 0
        for _ in range(iterations):
            result = yield from bpf.read_chain_robust(proc, fd, 0, 4096,
                                                      max_retries=32)
            assert result.value == 1000 + ORDER[-1]
            completed += 1
        return completed

    completed = kernel.run_syscall(workload())
    return sim, kernel, bpf, completed


def test_same_seed_same_plan_identical_trace(tmp_path):
    paths = []
    for run in range(2):
        path = tmp_path / f"trace-{run}.jsonl"
        with ObsSession(record_jsonl=True) as obs:
            run_faulted_workload()
        obs.write_trace_jsonl(str(path))
        paths.append(path)
    first, second = (p.read_bytes() for p in paths)
    assert first == second
    assert len(first) > 0


def test_metrics_reconcile_with_plan_counters():
    with ObsSession() as obs:
        sim, kernel, bpf, completed = run_faulted_workload()
    assert completed == 40
    plan = kernel.fault_plan
    assert plan.total_injected() > 0
    registry = obs.registry
    injected = registry.get("faults_injected_total")
    assert sum(s["value"] for s in injected.samples()) == \
        plan.total_injected()
    for kind in (FAULT_TRANSIENT, FAULT_TIMEOUT):
        assert injected.value(kind=kind) == plan.injected[kind]
    retries = registry.get("nvme_retries_total")
    assert sum(s["value"] for s in retries.samples()) == kernel.nvme_retries
    assert registry.get("nvme_timeouts_total").value() == \
        kernel.nvme_timeouts
    fallbacks = registry.get("chain_fallbacks_total")
    assert sum(s["value"] for s in fallbacks.samples()) == \
        bpf.engine.fault_fallbacks
    # Device-level books agree with the plan's.
    assert kernel.device.media_errors == plan.injected[FAULT_TRANSIENT]
    assert kernel.device.timeouts >= plan.injected[FAULT_TIMEOUT]


def run_power_loss_workload():
    """The mixed metadata workload cut at its third fsync, then recovered."""
    from repro.faults.crashpoints import _build_machine, _run_ops, \
        mixed_workload
    from repro.kernel import JournalConfig, fsck

    spec = FaultSpec(seed=13, power_loss_after_flushes=3, torn_write=1)
    kernel = _build_machine(seed=5, cache_depth=8,
                            journal=JournalConfig(journal_blocks=32),
                            spec=spec, capacity_sectors=1 << 18)
    run = _run_ops(kernel, mixed_workload(5), seed=5)
    assert run.crashed
    kernel.recover()
    assert fsck(kernel.fs).ok
    return kernel


def test_same_seed_same_power_loss_identical_recovery(tmp_path):
    """Same seed + same power-loss plan: the recovered media image and
    the exported trace are byte-identical across runs."""
    images, paths = [], []
    for run in range(2):
        path = tmp_path / f"crash-trace-{run}.jsonl"
        with ObsSession(record_jsonl=True) as obs:
            kernel = run_power_loss_workload()
        obs.write_trace_jsonl(str(path))
        paths.append(path)
        images.append(kernel.fs.media.image())
    assert images[0] == images[1]
    first, second = (p.read_bytes() for p in paths)
    assert first == second
    assert len(first) > 0


# ---------------------------------------------------------------------------
# Network fault episodes (consumed by repro.net.fabric)
# ---------------------------------------------------------------------------


def test_spec_rejects_bad_net_fields():
    with pytest.raises(InvalidArgument, match="net_drop_rate"):
        FaultSpec(net_drop_rate=1.5)
    with pytest.raises(InvalidArgument, match="net fault rates"):
        FaultSpec(net_drop_rate=0.7, net_delay_rate=0.5)
    with pytest.raises(InvalidArgument, match="net_drop_burst"):
        FaultSpec(net_drop_rate=0.1, net_drop_burst=0)
    with pytest.raises(InvalidArgument, match="net_delay_ns"):
        FaultSpec(net_delay_rate=0.1, net_delay_ns=-1)


def test_net_fields_parse_and_arm_any_faults():
    spec = parse_fault_spec("seed=5, net_drop_rate=0.25, net_drop_burst=3,"
                            "net_delay_rate=0.1, net_delay_ns=75000")
    assert spec == FaultSpec(seed=5, net_drop_rate=0.25, net_drop_burst=3,
                             net_delay_rate=0.1, net_delay_ns=75_000)
    assert isinstance(spec.net_drop_burst, int)
    assert isinstance(spec.net_delay_ns, int)
    assert spec.any_net_faults() and spec.any_faults()
    # Net-only specs arm any_faults() without arming media retries.
    media_only = FaultSpec(read_error_rate=0.1)
    assert not media_only.any_net_faults() and media_only.any_faults()


def test_net_drop_episode_burst_then_guaranteed_delivery():
    plan = FaultPlan(FaultSpec(net_drop_rate=1.0, net_drop_burst=3))
    key = ("client/c2s", 7)
    fates = [plan.net_decision(key, 0) for _ in range(5)]
    # The frame and two retransmissions are lost, then the cooldown
    # guarantees the next attempt through, then a fresh episode begins.
    assert fates == [FAULT_NET_DROP] * 3 + [None, FAULT_NET_DROP]
    assert plan.injected[FAULT_NET_DROP] == 4
    # Another request id on the same link is its own episode.
    assert plan.net_decision(("client/c2s", 8), 0) == FAULT_NET_DROP


def test_net_delay_is_partitioned_from_drop():
    plan = FaultPlan(FaultSpec(net_delay_rate=1.0, net_delay_ns=5_000))
    fates = [plan.net_decision(("wire", rid), 0) for rid in range(4)]
    assert fates == [FAULT_NET_DELAY] * 4
    assert plan.injected[FAULT_NET_DELAY] == 4
    assert plan.injected[FAULT_NET_DROP] == 0


def test_net_window_gates_draws():
    spec = FaultSpec(net_drop_rate=1.0, window_start_ns=1000,
                     window_end_ns=2000)
    plan = FaultPlan(spec)
    key = ("wire", 1)
    assert plan.net_decision(key, 0) is None
    assert plan.net_decision(key, 1500) == FAULT_NET_DROP
    # The in-window episode's cooldown is consumed...
    assert plan.net_decision(key, 1600) is None
    # ...and past the window nothing is drawn at all.
    assert plan.net_decision(key, 2500) is None


def test_net_stream_is_independent_of_media_stream():
    media_spec = FaultSpec(seed=11, read_error_rate=0.2)
    both_spec = FaultSpec(seed=11, read_error_rate=0.2, net_drop_rate=0.3,
                          net_delay_rate=0.3)

    def media_sequence(spec):
        plan = FaultPlan(spec, kernel_seed=4)
        out = []
        for lba in range(100):
            out.append(plan.media_decision(read_cmd(lba % 7), lba * 10))
            # Interleave net draws; they must not perturb media fates.
            plan.net_decision(("wire", lba), lba * 10)
        return out

    assert media_sequence(media_spec) == media_sequence(both_spec)

    def net_sequence(kernel_seed):
        plan = FaultPlan(both_spec, kernel_seed=kernel_seed)
        return [plan.net_decision(("wire", rid), rid * 10)
                for rid in range(100)]

    assert net_sequence(4) == net_sequence(4)
    assert net_sequence(4) != net_sequence(5)
