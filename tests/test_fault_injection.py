"""Media-error injection: every read path must surface device failures."""

import pytest

from chainutil import build_machine, install_walker, linked_file_bytes
from repro.errors import IoError
from repro.kernel import IoUring, ReadResult

ORDER = [0, 1, 2, 3]


def make_machine_with_error(fail_block=2):
    sim, kernel, bpf = build_machine()
    kernel.create_file("/list", linked_file_bytes(ORDER))
    inode = kernel.fs.lookup("/list")
    phys = inode.extents.lookup(fail_block)
    kernel.device.inject_media_error(phys * 8, 8)
    return sim, kernel, bpf


def test_sync_read_raises_on_media_error():
    sim, kernel, bpf = make_machine_with_error()
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        yield from kernel.sys_pread(proc, fd, 2 * 4096, 512)

    with pytest.raises(IoError, match="media error"):
        kernel.run_syscall(workload())


def test_sync_read_of_healthy_block_unaffected():
    sim, kernel, bpf = make_machine_with_error(fail_block=2)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        result = yield from kernel.sys_pread(proc, fd, 0, 512)
        return result

    assert kernel.run_syscall(workload()).ok


def test_blocking_read_raises_on_media_error():
    from repro.device import LatencyModel
    from repro.kernel import Kernel, KernelConfig
    from repro.sim import Simulator
    from repro.core import StorageBpf

    slow = LatencyModel("slow", read_ns=80_000, write_ns=80_000,
                        parallelism=4, jitter=0.0)
    sim = Simulator()
    kernel = Kernel(sim, slow, KernelConfig())
    StorageBpf(kernel)
    kernel.create_file("/f", bytes(8192))
    inode = kernel.fs.lookup("/f")
    kernel.device.inject_media_error(inode.extents.lookup(0) * 8, 8)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_pread(proc, fd, 0, 512)

    with pytest.raises(IoError, match="media error"):
        kernel.run_syscall(workload())


def test_write_raises_on_media_error():
    sim, kernel, bpf = build_machine()
    kernel.create_file("/f", bytes(4096))
    inode = kernel.fs.lookup("/f")
    kernel.device.inject_media_error(inode.extents.lookup(0) * 8, 8)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/f")
        yield from kernel.sys_pwrite(proc, fd, 0, b"x" * 512)

    with pytest.raises(IoError, match="media error"):
        kernel.run_syscall(workload())


def test_chain_surfaces_media_error_as_eio():
    sim, kernel, bpf = make_machine_with_error(fail_block=2)
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.status == ReadResult.EIO
    assert result.hops == 3  # blocks 0, 1 ok; block 2 fails


def test_robust_read_raises_on_eio():
    sim, kernel, bpf = make_machine_with_error(fail_block=2)
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        yield from bpf.read_chain_robust(proc, fd, 0, 4096)

    with pytest.raises(IoError, match="media error"):
        kernel.run_syscall(workload())


def test_iouring_posts_eio_cqe():
    sim, kernel, bpf = make_machine_with_error(fail_block=2)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        ring = IoUring(kernel, proc)
        ring.prep_read(fd, 2 * 4096, 512, user_data="bad")
        ring.prep_read(fd, 0, 512, user_data="good")
        cqes = yield from ring.enter(wait_nr=2)
        return cqes

    cqes = kernel.run_syscall(workload())
    by_tag = {cqe.user_data: cqe.result for cqe in cqes}
    assert by_tag["bad"].status == ReadResult.EIO
    assert by_tag["good"].ok


def test_clear_media_errors_recovers():
    sim, kernel, bpf = make_machine_with_error(fail_block=2)
    proc = kernel.spawn_process()

    def failing():
        fd = yield from kernel.sys_open(proc, "/list")
        yield from kernel.sys_pread(proc, fd, 2 * 4096, 512)

    with pytest.raises(IoError):
        kernel.run_syscall(failing())
    kernel.device.clear_media_errors()

    def healthy():
        fd = yield from kernel.sys_open(proc, "/list")
        result = yield from kernel.sys_pread(proc, fd, 2 * 4096, 512)
        return result

    assert kernel.run_syscall(healthy()).ok
    assert kernel.device.media_errors == 1
