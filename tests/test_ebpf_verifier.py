"""Verifier tests: what must be accepted and what must be rejected."""

import pytest

from repro.errors import VerifierError
from repro.ebpf import (
    CtxField,
    CtxLayout,
    FieldKind,
    HashMap,
    Program,
    assemble,
    base_registry,
    verify,
)

HELPERS = base_registry()
NAMES = HELPERS.names()

LAYOUT = CtxLayout(
    [
        CtxField("data", 0, 8, FieldKind.POINTER, region="data",
                 region_size=4096),
        CtxField("data_len", 8, 8),
        CtxField("file_offset", 16, 8),
        CtxField("out", 24, 8, writable=True),
        CtxField("scratch", 32, 8, FieldKind.POINTER, region="scratch",
                 region_size=256, writable=True),
    ]
)


def make(source, layout=LAYOUT):
    return Program(assemble(source, NAMES), layout, name="test")


def accept(source, maps=None, layout=LAYOUT):
    return verify(make(source, layout), HELPERS, maps=maps)


def reject(source, match, maps=None, layout=LAYOUT, budget=200_000):
    with pytest.raises(VerifierError, match=match):
        verify(make(source, layout), HELPERS, maps=maps,
               state_budget=budget)


# ---------------------------------------------------------------------------
# Acceptance
# ---------------------------------------------------------------------------


def test_trivial_program():
    accept("mov r0, 0\nexit")


def test_ctx_scalar_load_and_out_store():
    accept(
        """
        ldxdw r2, [r1+8]
        stxdw [r1+24], r2
        mov r0, 0
        exit
        """
    )


def test_data_pointer_constant_offset():
    accept(
        """
        ldxdw r2, [r1+0]
        ldxw  r3, [r2+4092]
        mov r0, 0
        exit
        """
    )


def test_bounded_variable_offset_after_check():
    accept(
        """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        jgt   r3, 4088, out
        add   r2, r3
        ldxdw r4, [r2+0]
    out:
        mov r0, 0
        exit
        """
    )


def test_stack_roundtrip():
    accept(
        """
        mov   r2, 77
        stxdw [r10-8], r2
        ldxdw r3, [r10-8]
        mov   r0, 0
        exit
        """
    )


def test_pointer_spill_and_restore():
    accept(
        """
        ldxdw r2, [r1+0]
        stxdw [r10-8], r2
        ldxdw r3, [r10-8]
        ldxb  r4, [r3+0]
        mov   r0, 0
        exit
        """
    )


def test_bounded_loop_with_constant_bound():
    accept(
        """
        mov r2, 0
        mov r3, 0
    loop:
        jge r2, 16, done
        add r3, r2
        add r2, 1
        ja  loop
    done:
        mov r0, 0
        exit
        """
    )


def test_loop_bounded_by_clamped_ctx_value():
    accept(
        """
        ldxdw r3, [r1+8]
        jle   r3, 32, go
        mov   r3, 32
    go:
        mov r2, 0
    loop:
        jge r2, r3, done
        add r2, 1
        ja  loop
    done:
        mov r0, 0
        exit
        """
    )


def test_map_lookup_with_null_check(helpers=HELPERS):
    m = HashMap(4, 8, 8)
    accept(
        """
        mov   r6, r1
        stw   [r10-4], 5
        mov   r1, 3
        mov   r2, r10
        add   r2, -4
        call  map_lookup
        jeq   r0, 0, miss
        ldxdw r2, [r0+0]
        stxdw [r6+24], r2
    miss:
        mov r0, 0
        exit
        """,
        maps={3: m},
    )


def test_writable_scratch_region():
    accept(
        """
        ldxdw r2, [r1+32]
        mov   r3, 99
        stxdw [r2+0], r3
        mov r0, 0
        exit
        """
    )


def test_pointer_store_to_non_stack_region_rejected():
    reject(
        """
        ldxdw r2, [r1+32]
        stxdw [r2+0], r2
        mov r0, 0
        exit
        """,
        "pointer stored",
    )


def test_memcmp_helper_with_bounded_size():
    accept(
        """
        ldxdw r6, [r1+0]
        mov   r5, 7
        stxdw [r10-8], r5
        mov   r1, r10
        add   r1, -8
        mov   r2, 8
        mov   r3, r6
        mov   r4, 8
        call  memcmp
        exit
        """
    )


def test_spilled_pointer_area_passed_to_helper_rejected():
    reject(
        """
        ldxdw r6, [r1+0]
        stxdw [r10-8], r6
        mov   r1, r10
        add   r1, -8
        mov   r2, 8
        mov   r3, r6
        mov   r4, 8
        call  memcmp
        exit
        """,
        "uninitialised",
    )


# ---------------------------------------------------------------------------
# Rejection
# ---------------------------------------------------------------------------


def test_uninitialised_register_read_rejected():
    reject("mov r0, r5\nexit", "uninitialised r5")


def test_uninitialised_r0_at_exit_rejected():
    reject("exit", "uninitialised r0")


def test_pointer_returned_in_r0_rejected():
    reject("ldxdw r0, [r1+0]\nexit", "pointer in r0")


def test_oob_constant_offset_rejected():
    reject(
        """
        ldxdw r2, [r1+0]
        ldxw  r3, [r2+4093]
        mov r0, 0
        exit
        """,
        "out of bounds",
    )


def test_negative_offset_rejected():
    reject(
        """
        ldxdw r2, [r1+0]
        ldxb  r3, [r2-1]
        mov r0, 0
        exit
        """,
        "out of bounds",
    )


def test_unbounded_variable_offset_rejected():
    reject(
        """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        add   r2, r3
        ldxb  r4, [r2+0]
        mov r0, 0
        exit
        """,
        "unbounded|out of tractable|out of bounds",
    )


def test_infinite_loop_rejected():
    reject("loop:\nja loop", "infinite loop")


def test_no_progress_loop_with_work_rejected():
    reject(
        """
        mov r2, 1
    loop:
        mov r3, r2
        ja  loop
        """,
        "infinite loop",
    )


def test_unclamped_loop_bound_rejected():
    reject(
        """
        ldxdw r3, [r1+8]
        mov r2, 0
    loop:
        jge r2, r3, done
        add r2, 1
        ja  loop
    done:
        mov r0, 0
        exit
        """,
        "budget exhausted|infinite loop",
        budget=3000,
    )


def test_write_to_readonly_data_rejected():
    reject(
        """
        ldxdw r2, [r1+0]
        stb   [r2+0], 1
        mov r0, 0
        exit
        """,
        "not writable|read-only",
    )


def test_write_to_readonly_ctx_field_rejected():
    reject(
        """
        mov r2, 1
        stxdw [r1+8], r2
        mov r0, 0
        exit
        """,
        "not writable",
    )


def test_ctx_load_between_fields_rejected():
    reject("ldxw r2, [r1+4]\nmov r0, 0\nexit", "matches no field")


def test_stack_out_of_bounds_rejected():
    reject("ldxdw r2, [r10-520]\nmov r0, 0\nexit", "out of bounds")


def test_stack_read_uninitialised_rejected():
    reject("ldxdw r2, [r10-8]\nmov r0, 0\nexit", "uninitialised stack")


def test_partial_read_of_spilled_pointer_rejected():
    reject(
        """
        ldxdw r2, [r1+0]
        stxdw [r10-8], r2
        ldxw  r3, [r10-8]
        mov r0, 0
        exit
        """,
        "partial read",
    )


def test_misaligned_pointer_spill_rejected():
    reject(
        """
        ldxdw r2, [r1+0]
        stxdw [r10-12], r2
        mov r0, 0
        exit
        """,
        "8-byte aligned",
    )


def test_null_deref_without_check_rejected():
    m = HashMap(4, 8, 8)
    reject(
        """
        stw   [r10-4], 5
        mov   r1, 3
        mov   r2, r10
        add   r2, -4
        call  map_lookup
        ldxdw r2, [r0+0]
        mov r0, 0
        exit
        """,
        "maybe-null",
        maps={3: m},
    )


def test_unknown_map_id_rejected():
    reject(
        """
        stw   [r10-4], 5
        mov   r1, 99
        mov   r2, r10
        add   r2, -4
        call  map_lookup
        mov r0, 0
        exit
        """,
        "unknown map id",
        maps={3: HashMap(4, 8, 8)},
    )


def test_nonconstant_map_id_rejected():
    reject(
        """
        ldxdw r1, [r1+8]
        mov   r2, r10
        add   r2, -4
        stw   [r10-4], 5
        call  map_lookup
        mov r0, 0
        exit
        """,
        "known constant",
        maps={3: HashMap(4, 8, 8)},
    )


def test_unknown_helper_rejected():
    reject("call 999\nmov r0, 0\nexit", "unknown helper")


def test_helper_unbounded_size_rejected():
    # The size in r2 comes straight from the ctx with no clamping, so the
    # verifier cannot bound the memcmp read.
    reject(
        """
        mov   r5, 1
        stxdw [r10-8], r5
        mov   r1, r10
        add   r1, -8
        ldxdw r2, [r1+0]
        mov   r3, r10
        add   r3, -8
        mov   r4, 8
        call  memcmp
        exit
        """,
        "unbounded",
    )


def test_registers_clobbered_after_call_rejected():
    reject(
        """
        mov r2, 5
        mov r1, r2
        call trace
        mov r0, r2
        exit
        """,
        "uninitialised r2",
    )


def test_pointer_arithmetic_on_maybe_null_rejected():
    m = HashMap(4, 8, 8)
    reject(
        """
        stw   [r10-4], 5
        mov   r1, 3
        mov   r2, r10
        add   r2, -4
        call  map_lookup
        add   r0, 4
        mov r0, 0
        exit
        """,
        "maybe-null",
        maps={3: m},
    )


def test_jump_out_of_range_rejected():
    from repro.ebpf.isa import Instruction

    prog = Program(
        [Instruction("ja", offset=5), Instruction("exit")], LAYOUT
    )
    with pytest.raises(VerifierError, match="jump target"):
        verify(prog, HELPERS)


def test_fallthrough_off_end_rejected():
    from repro.ebpf.isa import Instruction

    prog = Program(
        [Instruction("mov", dst=0, imm=0), Instruction("ja", offset=0)],
        LAYOUT,
    )
    # The final ja jumps to pc 2 == len -> falls off the end.
    with pytest.raises(VerifierError, match="jump target|falls off"):
        verify(prog, HELPERS)


def test_write_to_frame_pointer_rejected():
    reject("mov r10, 0\nexit", "frame pointer")


def test_comparison_refinement_enables_access():
    # Accessing data[i] for i in [0, 8) after a jlt check must verify.
    accept(
        """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        and   r3, 7
        add   r2, r3
        ldxb  r4, [r2+0]
        mov r0, 0
        exit
        """
    )


def test_branch_with_no_feasible_outcome_is_impossible():
    # jlt r2, 0 can never be taken; verifier should follow only fall-through.
    accept(
        """
        mov r2, 1
        jlt r2, 0, bad
        mov r0, 0
        exit
    bad:
        ldxdw r4, [r10-400]
        mov r0, 0
        exit
        """
    )


def test_verified_flag_set():
    prog = make("mov r0, 0\nexit")
    assert not prog.verified
    verify(prog, HELPERS)
    assert prog.verified
