"""Disassembler tests: output must re-assemble to identical instructions."""

from repro.core.hooks import storage_helpers
from repro.core.library import (
    index_traversal_program,
    linked_list_program,
    scan_aggregate_program,
)
from repro.ebpf import Instruction, assemble
from repro.ebpf.disasm import disassemble


def roundtrip(instructions, helpers=None):
    names = helpers.names() if helpers else {}
    inverse = {helper_id: name for name, helper_id in names.items()}
    text = disassemble(instructions, helper_names=inverse)
    return assemble(text, helpers=names)


def test_simple_roundtrip():
    insns = assemble(
        """
        mov   r1, 42
        add32 r1, -7
        lddw  r2, 0x1122334455667788
        ldxw  r3, [r1+16]
        stxdw [r10-8], r3
        stb   [r10-16], 1
        neg   r3
    loop:
        jne   r1, r2, loop
        exit
        """
    )
    assert roundtrip(insns) == insns


def test_helper_names_resolved():
    helpers = storage_helpers()
    insns = assemble("mov r1, 1\ncall trace\nmov r0, 0\nexit",
                     helpers.names())
    text = disassemble(insns, helper_names={
        v: k for k, v in helpers.names().items()})
    assert "call trace" in text
    assert roundtrip(insns, helpers) == insns


def test_unknown_helper_rendered_numerically():
    insns = [Instruction("call", imm=777), Instruction("exit")]
    text = disassemble(insns)
    assert "call 777" in text


def test_library_programs_roundtrip():
    helpers = storage_helpers()
    for maker in (linked_list_program,
                  lambda: index_traversal_program(fanout=16),
                  lambda: scan_aggregate_program(fanout=16)):
        program = maker()
        assert roundtrip(program.instructions, helpers) == \
            program.instructions


def test_disassembly_is_readable():
    program = linked_list_program()
    text = disassemble(program.instructions)
    assert "L0:" in text or "L1:" in text
    assert "ldxdw" in text
    assert text.endswith("exit\n")
