"""Observability: trace bus, metrics registry, span trees, JSONL export."""

import json

import pytest

from chainutil import build_machine, install_walker, linked_file_bytes
from repro.obs import (
    ATTRIBUTION,
    JsonlRecorder,
    LayerAttribution,
    MetricsRegistry,
    ObsSession,
    SpanCollector,
    TraceBus,
    attach_standard_metrics,
    dump_metrics_jsonl,
    events,
    get_default_bus,
    load_metrics_jsonl,
)

ORDER = [3, 5, 0, 7, 2, 6, 1, 4]


def chain_machine(bus=None, order=ORDER):
    kwargs = {"bus": bus} if bus is not None else {}
    sim, kernel, bpf = build_machine(**kwargs)
    kernel.create_file("/list", linked_file_bytes(order))
    proc, fd = install_walker(sim, kernel, bpf, "/list")
    return sim, kernel, bpf, proc, fd


def run_chain(kernel, bpf, proc, fd, offset=ORDER[0] * 4096):
    def workload():
        return (yield from bpf.read_chain(proc, fd, offset, 4096))

    return kernel.run_syscall(workload())


# ---------------------------------------------------------------------------
# Bus basics and determinism
# ---------------------------------------------------------------------------


def test_bus_dispatches_by_type_and_wildcard():
    bus = TraceBus(enabled=True)
    typed, wild = [], []
    bus.subscribe(typed.append, events.CHAIN_HOP)
    bus.subscribe(wild.append)
    bus.emit(events.CHAIN_HOP, 10, hop=1)
    bus.emit(events.CHAIN_KILL, 20, pid=7)
    assert [e.etype for e in typed] == [events.CHAIN_HOP]
    assert [e.etype for e in wild] == [events.CHAIN_HOP, events.CHAIN_KILL]
    assert typed[0].ts == 10 and typed[0].get("hop") == 1
    assert bus.events_emitted == 2


def test_bus_events_are_ordered_by_simulated_time():
    bus = TraceBus(enabled=True)
    recorder = JsonlRecorder(bus)
    _, kernel, bpf, proc, fd = chain_machine(bus=bus)
    run_chain(kernel, bpf, proc, fd)
    assert bus.events_emitted > 0
    stamps = [json.loads(line)["ts"] for line in recorder.lines]
    assert stamps == sorted(stamps)


def test_trace_jsonl_is_deterministic_across_runs():
    texts = []
    for _ in range(2):
        bus = TraceBus(enabled=True)
        recorder = JsonlRecorder(bus)
        _, kernel, bpf, proc, fd = chain_machine(bus=bus)
        run_chain(kernel, bpf, proc, fd)
        texts.append(recorder.text())
    assert texts[0] == texts[1]


# ---------------------------------------------------------------------------
# Disabled bus: the no-op fast path
# ---------------------------------------------------------------------------


def test_disabled_bus_is_a_noop():
    bus = TraceBus(enabled=False)
    seen = []
    bus.subscribe(seen.append)
    bus.emit(events.CHAIN_HOP, 5, hop=1)
    sid = bus.span_start("x", 5)
    bus.span_end(sid, 6)
    assert seen == []
    assert sid == 0
    assert bus.events_emitted == 0


def test_default_bus_is_disabled_and_workload_emits_nothing():
    assert not get_default_bus().enabled
    _, kernel, bpf, proc, fd = chain_machine()
    result = run_chain(kernel, bpf, proc, fd)
    assert result.ok
    assert kernel.bus.events_emitted == 0


def test_disabled_bus_noop_holds_with_net_subsystem():
    """A full remote GET (fabric + transport + target) emits nothing on
    the default disabled bus — the ``bus.enabled`` guard covers every
    ``net_rpc_send`` / ``net_rpc_recv`` / ``net_retry`` call site."""
    from repro.kernel import KernelConfig
    from repro.net import Connection, NetConfig, NetworkFabric, RemoteClient
    from repro.net import StorageTarget
    from repro.sim import Simulator

    sim = Simulator()
    target = StorageTarget(sim, config=KernelConfig(seed=2))
    target.create_file("/data", bytes(4096))
    fabric = NetworkFabric(sim, NetConfig(one_way_ns=10_000))
    connection = Connection(fabric, "quiet")
    target.attach(connection)
    client = RemoteClient(connection)

    def workload():
        return (yield from client.read("/data", 0, 512))

    assert sim.run_process(workload()) == bytes(512)
    assert not fabric.bus.enabled
    assert fabric.bus.events_emitted == 0
    assert target.kernel.bus.events_emitted == 0


def test_observation_does_not_perturb_the_simulation():
    _, kernel_off, bpf_off, proc_off, fd_off = chain_machine()
    plain = run_chain(kernel_off, bpf_off, proc_off, fd_off)
    bus = TraceBus(enabled=True)
    _, kernel_on, bpf_on, proc_on, fd_on = chain_machine(bus=bus)
    observed = run_chain(kernel_on, bpf_on, proc_on, fd_on)
    assert (plain.value, plain.hops) == (observed.value, observed.hops)
    assert kernel_off.sim.now == kernel_on.sim.now


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------


def test_chain_span_tree_parent_child_integrity():
    bus = TraceBus(enabled=True)
    spans = SpanCollector(bus)
    _, kernel, bpf, proc, fd = chain_machine(bus=bus)
    result = run_chain(kernel, bpf, proc, fd)
    assert result.hops == len(ORDER)

    roots = spans.find_roots("read_chain")
    assert len(roots) == 1
    root = roots[0]
    assert root.parent == 0
    assert root.end_ns is not None and root.end_ns >= root.start_ns
    # One hop span per completion-side dispatch, all parented on the root.
    hops = [child for child in root.children if child.name == "chain_hop"]
    assert len(hops) == len(ORDER)
    assert [h.attrs["hop"] for h in hops] == list(range(1, len(ORDER) + 1))
    for hop in hops:
        assert hop.parent == root.sid
        assert hop.end_ns is not None
        assert hop.start_ns >= root.start_ns
    # The chain setup charges fs/bio once, on the root span.
    assert root.layers.get("ext4", 0) > 0
    assert root.layers.get("bio", 0) > 0
    # Recycled hops never touch those layers; they pay irq + bpf (+ device
    # for every hop that issued another I/O).
    for hop in hops:
        assert "ext4" not in hop.layers and "bio" not in hop.layers
        assert hop.layers.get("irq", 0) > 0
        assert hop.layers.get("bpf", 0) > 0
    issuing = [h for h in hops if "storage device" in h.layers]
    assert len(issuing) == len(ORDER) - 1  # the final hop returns a value

    rendered = "\n".join(spans.render_span(root))
    assert "read_chain" in rendered and "chain_hop" in rendered


def test_baseline_read_spans_show_full_stack():
    bus = TraceBus(enabled=True)
    spans = SpanCollector(bus)
    sim, kernel, _ = build_machine(bus=bus)
    kernel.create_file("/flat", bytes(8192))
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/flat")
        yield from kernel.sys_pread(proc, fd, 0, 4096)

    kernel.run_syscall(workload())
    roots = spans.find_roots("sys_pread")
    assert len(roots) == 1
    layers = roots[0].layers
    for layer in ("ext4", "bio", "NVMe driver", "storage device"):
        assert layers.get(layer, 0) > 0, layer


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------


def test_chain_attribution_matches_cost_model():
    bus = TraceBus(enabled=True)
    attribution = LayerAttribution(bus)
    _, kernel, bpf, proc, fd = chain_machine(bus=bus)
    run_chain(kernel, bpf, proc, fd)
    cost = kernel.cost
    # ext4 and bio are charged once per chain, not once per hop.
    assert attribution.layer_ns("chain", "ext4") == cost.filesystem_ns
    assert attribution.layer_ns("chain", "bio") == cost.bio_ns
    # Driver submission cost accrues on every hop that issued an I/O.
    assert attribution.layer_ns("chain", "NVMe driver") == \
        cost.nvme_driver_ns * len(ORDER)
    assert attribution.hops == len(ORDER)
    assert attribution.ops.get("chain") == 1


# ---------------------------------------------------------------------------
# Metrics registry and JSONL round-trip
# ---------------------------------------------------------------------------


def test_metrics_snapshot_roundtrip_through_jsonl():
    registry = MetricsRegistry()
    counter = registry.counter("reads_total", "reads")
    counter.inc(3, path="normal")
    counter.inc(1, path="chain")
    registry.gauge("depth", "queue depth").set(7)
    histogram = registry.histogram("lat", buckets=[10, 100], help="ns")
    histogram.observe(5)
    histogram.observe(50)
    histogram.observe(5000)
    text = dump_metrics_jsonl(registry)
    assert load_metrics_jsonl(text) == registry.snapshot()
    # And the dump itself is deterministic.
    assert text == dump_metrics_jsonl(registry)


def test_standard_metrics_from_chain_workload():
    bus = TraceBus(enabled=True)
    registry = MetricsRegistry()
    attach_standard_metrics(bus, registry)
    _, kernel, bpf, proc, fd = chain_machine(bus=bus)
    run_chain(kernel, bpf, proc, fd)
    snapshot = {m["name"]: m for m in registry.snapshot()}
    assert snapshot["chain_hops_total"]["samples"][0]["value"] == len(ORDER)
    hist = snapshot["chain_depth"]["samples"][0]
    assert hist["count"] == 1 and hist["sum"] == len(ORDER)
    sources = {tuple(sorted(s["labels"].items())): s["value"]
               for s in snapshot["nvme_commands_total"]["samples"]}
    assert sources[(("source", "bpf-recycle"),)] == len(ORDER) - 1
    assert sources[(("source", "bio"),)] == 1


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("m", "help")
    with pytest.raises(ValueError):
        registry.gauge("m", "help")


def test_attribution_covers_all_table1_layers():
    layers = set(ATTRIBUTION.values())
    for layer in ("kernel crossing", "read syscall", "ext4", "bio",
                  "NVMe driver", "storage device"):
        assert layer in layers


# ---------------------------------------------------------------------------
# ObsSession end-to-end
# ---------------------------------------------------------------------------


def test_obs_session_installs_and_restores_default_bus():
    before = get_default_bus()
    with ObsSession() as obs:
        assert get_default_bus() is obs.bus
        _, kernel, bpf, proc, fd = chain_machine()
        assert kernel.bus is obs.bus
        run_chain(kernel, bpf, proc, fd)
    assert get_default_bus() is before
    report = obs.render_report()
    assert "Per-layer CPU-ns attribution" in report
    assert "chain bypass" in report
    assert "read_chain" in report


def test_obs_session_trace_jsonl_write(tmp_path):
    with ObsSession(record_jsonl=True) as obs:
        _, kernel, bpf, proc, fd = chain_machine()
        run_chain(kernel, bpf, proc, fd)
    target = tmp_path / "trace.jsonl"
    count = obs.write_trace_jsonl(str(target))
    lines = target.read_text().splitlines()
    assert len(lines) == count == obs.bus.events_emitted
    for line in lines:
        record = json.loads(line)
        assert "ts" in record and "type" in record


def test_histogram_reports_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("svc", buckets=[10, 100, 1000], help="ns")
    for value in range(1, 101):  # 1..100
        histogram.observe(value)
    (sample,) = histogram.samples()
    assert sample["count"] == 100
    assert sample["p50"] == pytest.approx(50.5)
    assert sample["p95"] == pytest.approx(95.05)
    assert sample["p99"] == pytest.approx(99.01)
    # Rendered lines carry the percentiles alongside count/sum.
    line = [l for l in registry.render().splitlines() if l.startswith("svc")][0]
    assert "p50=" in line and "p95=" in line and "p99=" in line


def test_nvme_service_time_histogram_from_chain_workload():
    bus = TraceBus(enabled=True)
    registry = MetricsRegistry()
    attach_standard_metrics(bus, registry)
    _, kernel, bpf, proc, fd = chain_machine(bus=bus)
    run_chain(kernel, bpf, proc, fd)
    histogram = registry.get("nvme_service_time_ns")
    (sample,) = histogram.samples()
    # Every completed NVMe command carried its device service time.
    assert sample["count"] == len(ORDER)
    assert sample["sum"] > 0
    assert sample["p50"] > 0
    # Cumulative bucket counts are monotone and end at the sample count.
    counts = [sample["buckets"][str(b)] for b in histogram.buckets]
    assert counts == sorted(counts)
    assert counts[-1] <= sample["count"]
