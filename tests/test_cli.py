"""Tests for the command-line front end."""

import pytest

from repro.cli import _EXPERIMENTS, _PROGRAMS, build_parser, main


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_quick_runs(capsys):
    assert main(["experiment", "table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "ext4" in out


def test_experiment_names_all_registered():
    expected = {"fig1", "table1", "fig3a", "fig3b", "fig3c", "fig3d",
                "stability", "bound", "churn", "vmmode", "appcache",
                "interference", "resilience", "crash", "scale",
                "pushdown", "cluster", "tenants", "compaction"}
    assert set(_EXPERIMENTS) == expected


def test_experiment_shorthand_runs_pushdown(capsys):
    # ``python -m repro pushdown`` == ``python -m repro experiment
    # pushdown`` — the top-level name shorthand picks up experiments
    # registered through the shared subparser helper.
    assert main(["pushdown", "--quick", "--json"]) == 0
    out = capsys.readouterr().out
    assert '"speedup"' in out
    assert '"pushdown_rpcs_per_get": 1.0' in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_disasm_outputs_assembly(capsys):
    assert main(["disasm", "index"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "ldxdw" in out
    assert "exit" in out


@pytest.mark.parametrize("program", sorted(_PROGRAMS))
def test_disasm_all_programs(program, capsys):
    assert main(["disasm", program]) == 0
    assert "verified" in capsys.readouterr().out


def test_verify_demo_shows_both_outcomes(capsys):
    assert main(["verify-demo"]) == 0
    out = capsys.readouterr().out
    assert out.count("ACCEPT") == 1
    assert out.count("REJECT") == 3
    assert "out of bounds" in out
    assert "uninitialised" in out


def test_quick_experiments_all_run(capsys):
    # The heavier ones are covered by the benchmarks; spot-check a light
    # subset through the CLI plumbing.
    for name in ("fig1", "fig3c", "bound", "vmmode", "appcache"):
        assert main(["experiment", name, "--quick"]) == 0
        assert capsys.readouterr().out


def test_experiment_with_fault_plan(capsys):
    from repro.faults import get_default_fault_spec

    assert main(["experiment", "fig3c", "--quick", "--fault-plan",
                 "seed=7,read_error_rate=0.02,error_burst=2"]) == 0
    assert capsys.readouterr().out
    # The plan is scoped to the run, not left installed process-wide.
    assert get_default_fault_spec() is None


def test_experiment_rejects_bad_fault_plan():
    from repro.errors import InvalidArgument

    with pytest.raises(InvalidArgument, match="unknown fault-plan key"):
        main(["experiment", "fig3c", "--quick", "--fault-plan",
              "bogus=1"])


def test_metrics_with_fault_plan_reports_fault_counters(capsys):
    assert main(["metrics", "fig3c", "--quick", "--fault-plan",
                 "seed=7,read_error_rate=0.05,error_burst=2"]) == 0
    out = capsys.readouterr().out
    assert "faults_injected_total" in out
    assert "nvme_retries_total" in out


def test_profile_quick_prints_hotspot_table(capsys):
    assert main(["profile", "fig3c", "--quick", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "self-profile" in out
    assert "engine" in out
    assert "vm" in out
    assert "events dispatched" in out


def test_profile_collapsed_to_stdout(capsys):
    assert main(["profile", "table1", "--quick", "--collapsed", "-"]) == 0
    out = capsys.readouterr().out
    # Collapsed lines are "subsystem:site;... self_ns".
    folded = [line for line in out.splitlines()
              if line.startswith("engine:") and line.rsplit(" ", 1)[-1].isdigit()]
    assert folded


def test_profile_collapsed_to_file(tmp_path, capsys):
    target = tmp_path / "prof.folded"
    assert main(["profile", "table1", "--quick",
                 "--collapsed", str(target)]) == 0
    text = target.read_text()
    assert text.strip()
    assert "collapsed stacks ->" in capsys.readouterr().out


def test_profile_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["profile", "fig99", "--quick"])
