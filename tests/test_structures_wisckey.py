"""Tests for the WiscKey-style store and its two-phase BPF program."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from chainutil import build_machine
from repro.core import Hook
from repro.core.library import wisckey_get_program
from repro.errors import InvalidArgument
from repro.structures import FsBackend, MemoryBackend, WisckeyStore
from repro.structures.pages import PAGE_SIZE
from repro.structures.wisckey import MAX_PAYLOAD


def build_store(items, fanout=8):
    return WisckeyStore.build(MemoryBackend(), items, fanout=fanout)


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------


def test_build_and_get():
    items = [(i * 3, f"v{i}".encode()) for i in range(200)]
    store = build_store(items)
    for key, payload in items[::13]:
        assert store.get(key) == payload
    assert store.get(1) is None
    assert store.get(10**9) is None


def test_hops_per_get_is_depth_plus_one():
    store = build_store([(i, b"x") for i in range(200)], fanout=4)
    assert store.hops_per_get() == store.tree.depth + 1


def test_payload_sizes_up_to_max():
    items = [(1, b""), (2, b"a" * MAX_PAYLOAD)]
    store = build_store(items)
    assert store.get(1) == b""
    assert store.get(2) == b"a" * MAX_PAYLOAD


def test_oversized_payload_rejected():
    with pytest.raises(InvalidArgument):
        build_store([(1, b"x" * (MAX_PAYLOAD + 1))])


def test_empty_store_rejected():
    with pytest.raises(InvalidArgument):
        build_store([])


def test_reopen_from_backend():
    backend = MemoryBackend()
    WisckeyStore.build(backend, [(5, b"five"), (7, b"seven")])
    store = WisckeyStore(backend)
    assert store.get(7) == b"seven"


def test_parse_record():
    store = build_store([(42, b"hello")])
    offset = store.tree.lookup(42)
    key, payload = WisckeyStore.parse_record(
        store.backend.read(offset, PAGE_SIZE))
    assert (key, payload) == (42, b"hello")


@settings(max_examples=20, deadline=None)
@given(st.dictionaries(st.integers(0, 2**40),
                       st.binary(min_size=0, max_size=64),
                       min_size=1, max_size=150),
       st.integers(3, 16))
def test_matches_dict_reference(entries, fanout):
    items = sorted(entries.items())
    store = build_store(items, fanout=fanout)
    for key, payload in items:
        assert store.get(key) == payload
    for probe in list(entries)[:5]:
        assert store.get(probe + 1) == entries.get(probe + 1)


# ---------------------------------------------------------------------------
# BPF chain get
# ---------------------------------------------------------------------------


def make_chain_machine(num_keys=400, fanout=8, hook=Hook.NVME):
    sim, kernel, bpf = build_machine()
    inode = kernel.fs.create("/wk")
    items = [(i * 2, f"payload-{i}".encode()) for i in range(num_keys)]
    store = WisckeyStore.build(FsBackend(kernel.fs, inode), items,
                               fanout=fanout)
    program = wisckey_get_program(fanout=fanout)
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def setup():
        fd = yield from kernel.sys_open(proc, "/wk")
        yield from bpf.install(proc, fd, program, hook=hook)
        return fd

    fd = kernel.run_syscall(setup())
    return sim, kernel, bpf, store, proc, fd


def chain_get(kernel, bpf, store, proc, fd, key):
    def workload():
        result = yield from bpf.read_chain_robust(
            proc, fd, store.tree.meta.root_offset, PAGE_SIZE, args=(key,))
        return result

    result = kernel.run_syscall(workload())
    if result.value2 != 1:
        return None, result
    _key, payload = WisckeyStore.parse_record(result.data)
    return payload, result


@pytest.mark.parametrize("hook", [Hook.NVME, Hook.SYSCALL])
def test_chain_get_hits(hook):
    sim, kernel, bpf, store, proc, fd = make_chain_machine(hook=hook)
    for probe in (0, 200, 798):
        payload, result = chain_get(kernel, bpf, store, proc, fd, probe)
        assert payload == f"payload-{probe // 2}".encode()
        assert result.hops == store.hops_per_get()
        assert result.value == len(payload)


def test_chain_get_miss_stops_at_leaf():
    sim, kernel, bpf, store, proc, fd = make_chain_machine()
    payload, result = chain_get(kernel, bpf, store, proc, fd, 3)
    assert payload is None
    assert result.hops == store.tree.depth  # no log hop on a miss


def test_chain_get_agrees_with_reference():
    sim, kernel, bpf, store, proc, fd = make_chain_machine(num_keys=150,
                                                           fanout=5)
    for probe in list(range(0, 300, 17)) + [10**9]:
        payload, _result = chain_get(kernel, bpf, store, proc, fd, probe)
        assert payload == store.get(probe)


def test_chain_log_hop_is_recycled():
    sim, kernel, bpf, store, proc, fd = make_chain_machine()
    kernel.trace.clear()
    chain_get(kernel, bpf, store, proc, fd, 200)
    # Every hop after the first — including the log dereference — was a
    # recycled descriptor.
    assert kernel.trace.count(source="bpf-recycle") == \
        store.hops_per_get() - 1
