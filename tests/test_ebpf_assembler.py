"""Unit tests for the textual assembler."""

import pytest

from repro.errors import AssemblerError
from repro.ebpf import assemble
from repro.ebpf.isa import Instruction


def test_mov_imm_and_reg():
    insns = assemble("mov r1, 42\nmov r2, r1\nexit")
    assert insns[0] == Instruction("mov", dst=1, imm=42)
    assert insns[1] == Instruction("mov", dst=2, src=1, src_is_reg=True)
    assert insns[2] == Instruction("exit")


def test_hex_and_negative_immediates():
    insns = assemble("mov r1, 0xff\nadd r1, -7\nexit")
    assert insns[0].imm == 255
    assert insns[1].imm == -7


def test_comments_and_blank_lines_ignored():
    insns = assemble(
        """
        ; full line comment
        mov r1, 1   ; trailing
        # hash comment
        exit
        """
    )
    assert len(insns) == 2


def test_memory_operands():
    insns = assemble(
        """
        ldxw  r2, [r1+16]
        ldxdw r3, [r10-8]
        stxb  [r2+0], r3
        stw   [r10-4], 9
        exit
        """
    )
    assert insns[0] == Instruction("ldxw", dst=2, src=1, offset=16)
    assert insns[1] == Instruction("ldxdw", dst=3, src=10, offset=-8)
    assert insns[2] == Instruction("stxb", dst=2, src=3, offset=0)
    assert insns[3] == Instruction("stw", dst=10, offset=-4, imm=9)


def test_labels_forward_and_backward():
    insns = assemble(
        """
        start:
            jeq r1, 0, done
            sub r1, 1
            ja  start
        done:
            exit
        """
    )
    # jeq at pc 0 -> done at pc 3: offset 2
    assert insns[0].offset == 2
    # ja at pc 2 -> start at pc 0: offset -3
    assert insns[2].offset == -3


def test_alu32_suffix():
    insns = assemble("add32 r1, 5\nexit")
    assert insns[0].opcode == "add32"


def test_lddw_wide_immediate():
    insns = assemble("lddw r1, 0x1122334455667788\nexit")
    assert insns[0] == Instruction("lddw", dst=1, imm=0x1122334455667788)


def test_call_by_name_and_number():
    insns = assemble("call trace\ncall 7\nexit", helpers={"trace": 1})
    assert insns[0] == Instruction("call", imm=1)
    assert insns[1] == Instruction("call", imm=7)


def test_unknown_helper_rejected():
    with pytest.raises(AssemblerError, match="unknown helper"):
        assemble("call nosuch\nexit")


def test_unknown_label_rejected():
    with pytest.raises(AssemblerError, match="unknown label"):
        assemble("ja nowhere\nexit")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("x:\nmov r0, 0\nx:\nexit")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frob r1, r2\nexit")


def test_bad_register_rejected():
    with pytest.raises(AssemblerError):
        assemble("mov r11, 0\nexit")


def test_bad_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("mov r1\nexit")
    with pytest.raises(AssemblerError):
        assemble("exit r1")


def test_empty_source_rejected():
    with pytest.raises(AssemblerError, match="no instructions"):
        assemble("; nothing here")


def test_neg_single_operand():
    insns = assemble("neg r3\nexit")
    assert insns[0] == Instruction("neg", dst=3)


def test_jump_with_register_comparand():
    insns = assemble("loop:\njlt r1, r2, loop\nexit")
    assert insns[0].src_is_reg
    assert insns[0].offset == -1
