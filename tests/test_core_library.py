"""End-to-end tests of the prebuilt BPF programs over real structures."""

import pytest

from chainutil import build_machine
from repro.core import Hook
from repro.core.library import (
    index_traversal_program,
    linked_list_program,
    scan_aggregate_program,
)
from repro.structures import BTree, FsBackend, SsTable
from repro.structures.pages import PAGE_SIZE


def build_btree_machine(num_keys=200, fanout=4, stride=3):
    sim, kernel, bpf = build_machine()
    inode = kernel.fs.create("/index")
    items = [(i * stride + 1, i * 100 + 7) for i in range(num_keys)]
    tree = BTree.build(FsBackend(kernel.fs, inode), items, fanout=fanout)
    return sim, kernel, bpf, tree, dict(items)


def install_index_program(kernel, bpf, path, fanout, hook=Hook.NVME):
    program = index_traversal_program(fanout=fanout)
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def setup():
        fd = yield from kernel.sys_open(proc, path)
        yield from bpf.install(proc, fd, program, hook=hook)
        return fd

    fd = kernel.run_syscall(setup())
    return proc, fd


def chain_lookup(kernel, bpf, proc, fd, root_offset, key):
    def workload():
        result = yield from bpf.read_chain_robust(
            proc, fd, root_offset, PAGE_SIZE, args=(key,))
        return result

    return kernel.run_syscall(workload())


# ---------------------------------------------------------------------------
# B-tree traversal
# ---------------------------------------------------------------------------


def test_btree_chain_lookup_finds_all_keys():
    sim, kernel, bpf, tree, reference = build_btree_machine()
    proc, fd = install_index_program(kernel, bpf, "/index", tree.meta.fanout)
    for key, value in list(reference.items())[::17]:
        result = chain_lookup(kernel, bpf, proc, fd, tree.meta.root_offset,
                              key)
        assert result.value2 == 1, f"key {key} not found"
        assert result.value == value
        assert result.hops == tree.depth


def test_btree_chain_lookup_missing_key():
    sim, kernel, bpf, tree, reference = build_btree_machine()
    proc, fd = install_index_program(kernel, bpf, "/index", tree.meta.fanout)
    for probe in (0, 2, 10**9):
        result = chain_lookup(kernel, bpf, proc, fd, tree.meta.root_offset,
                              probe)
        assert result.value2 == 0
        assert tree.lookup(probe) is None


def test_btree_chain_depth_matches_tree_depth():
    for depth in (1, 2, 3, 4):
        num_keys = BTree.keys_for_depth(depth, fanout=4)
        sim, kernel, bpf, tree, reference = build_btree_machine(
            num_keys=num_keys, fanout=4, stride=1)
        assert tree.depth == depth
        proc, fd = install_index_program(kernel, bpf, "/index", 4)
        key = next(iter(reference))
        result = chain_lookup(kernel, bpf, proc, fd, tree.meta.root_offset,
                              key)
        assert result.hops == depth
        assert result.value == reference[key]


def test_btree_syscall_hook_lookup():
    sim, kernel, bpf, tree, reference = build_btree_machine()
    proc, fd = install_index_program(kernel, bpf, "/index", tree.meta.fanout,
                                     hook=Hook.SYSCALL)
    key, value = next(iter(reference.items()))
    result = chain_lookup(kernel, bpf, proc, fd, tree.meta.root_offset, key)
    assert (result.value, result.value2) == (value, 1)


def test_btree_chain_agrees_with_python_lookup_everywhere():
    sim, kernel, bpf, tree, reference = build_btree_machine(num_keys=120,
                                                            fanout=8)
    proc, fd = install_index_program(kernel, bpf, "/index", 8)
    probes = sorted(reference)[::7] + [0, 5, 10**12]
    for probe in probes:
        result = chain_lookup(kernel, bpf, proc, fd, tree.meta.root_offset,
                              probe)
        expected = tree.lookup(probe)
        if expected is None:
            assert result.value2 == 0
        else:
            assert (result.value, result.value2) == (expected, 1)


def test_btree_chain_with_large_fanout():
    sim, kernel, bpf, tree, reference = build_btree_machine(num_keys=1000,
                                                            fanout=255)
    assert tree.depth == 2
    proc, fd = install_index_program(kernel, bpf, "/index", 255)
    key, value = list(reference.items())[531]
    result = chain_lookup(kernel, bpf, proc, fd, tree.meta.root_offset, key)
    assert (result.value, result.value2, result.hops) == (value, 1, 2)


# ---------------------------------------------------------------------------
# SSTable traversal (same program, different structure)
# ---------------------------------------------------------------------------


def test_sstable_chain_get():
    sim, kernel, bpf = build_machine()
    inode = kernel.fs.create("/sst")
    items = [(i * 2, i + 5000) for i in range(2000)]
    table = SsTable.build(FsBackend(kernel.fs, inode), items)
    proc, fd = install_index_program(kernel, bpf, "/sst", 255)
    for key, value in items[::191]:
        result = chain_lookup(kernel, bpf, proc, fd,
                              table.root_index_offset, key)
        assert (result.value, result.value2) == (value, 1)
        assert result.hops == 3  # root index -> index -> data
    result = chain_lookup(kernel, bpf, proc, fd, table.root_index_offset, 3)
    assert result.value2 == 0  # odd keys absent


# ---------------------------------------------------------------------------
# Scan/aggregate pushdown
# ---------------------------------------------------------------------------


def test_scan_aggregate_counts_and_sums():
    sim, kernel, bpf = build_machine()
    from repro.structures.pages import BTREE_PAGE_MAGIC, encode_page

    # Lay out 8 consecutive data pages of 100 entries each.
    pages = []
    expected_count = 0
    expected_sum = 0
    low, high = 250, 750
    key = 0
    for _page in range(8):
        entries = []
        for _entry in range(100):
            value = key * 3
            entries.append((key, value))
            if low <= key <= high:
                expected_count += 1
                expected_sum += value
            key += 1
        pages.append(encode_page(BTREE_PAGE_MAGIC, 0, entries))
    kernel.create_file("/table", b"".join(pages))

    program = scan_aggregate_program(fanout=128)
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/table")
        yield from bpf.install(proc, fd, program, args=(low, high, 8))
        result = yield from bpf.read_chain(proc, fd, 0, PAGE_SIZE)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.hops == 8
    assert result.value == expected_sum
    assert result.value2 == expected_count
    # 7 of the 8 pages were fetched by recycled descriptors.
    assert kernel.trace.count(source="bpf-recycle") == 7


def test_scan_aggregate_single_page():
    sim, kernel, bpf = build_machine()
    from repro.structures.pages import BTREE_PAGE_MAGIC, encode_page

    entries = [(i, i) for i in range(50)]
    kernel.create_file("/table", encode_page(BTREE_PAGE_MAGIC, 0, entries))
    program = scan_aggregate_program(fanout=64)
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/table")
        yield from bpf.install(proc, fd, program, args=(0, 9, 1))
        result = yield from bpf.read_chain(proc, fd, 0, PAGE_SIZE)
        return result

    result = kernel.run_syscall(workload())
    assert result.value == sum(range(10))
    assert result.value2 == 10
    assert result.hops == 1


# ---------------------------------------------------------------------------
# Linked list program (library version of the test walker)
# ---------------------------------------------------------------------------


def test_linked_list_program_walks():
    from chainutil import linked_file_bytes

    sim, kernel, bpf = build_machine()
    order = [2, 0, 4, 1, 3]
    kernel.create_file("/list", linked_file_bytes(order))
    program = linked_list_program()
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        yield from bpf.install(proc, fd, program)
        result = yield from bpf.read_chain(proc, fd, order[0] * 4096, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.value == 1000 + order[-1]
    assert result.value2 == 1
    assert result.hops == len(order)
