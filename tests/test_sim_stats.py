"""Unit tests for latency/throughput statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import LatencyRecorder, ThroughputMeter, percentile


def test_percentile_basic():
    samples = [10, 20, 30, 40, 50]
    assert percentile(samples, 0.0) == 10
    assert percentile(samples, 1.0) == 50
    assert percentile(samples, 0.5) == 30
    assert percentile(samples, 0.25) == 20


def test_percentile_interpolates():
    assert percentile([0, 10], 0.5) == 5.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_percentile_fraction_bounds():
    with pytest.raises(ValueError):
        percentile([1], 1.5)
    with pytest.raises(ValueError):
        percentile([1], -0.1)


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
def test_percentile_within_range(samples):
    for fraction in [0.0, 0.25, 0.5, 0.9, 1.0]:
        value = percentile(samples, fraction)
        assert min(samples) <= value <= max(samples)


def test_latency_recorder_summary():
    rec = LatencyRecorder()
    for value in [100, 200, 300]:
        rec.record(value)
    summary = rec.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(200)
    assert summary["min"] == 100
    assert summary["max"] == 300
    assert summary["p50"] == 200


def test_latency_recorder_rejects_negative():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-1)


def test_latency_recorder_empty_mean_rejected():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        _ = rec.mean


def test_latency_recorder_empty_summary_is_well_formed():
    summary = LatencyRecorder().summary()
    assert summary == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                       "p50": 0.0, "p99": 0.0}


def test_latency_recorder_empty_percentiles_match_summary():
    """Empty-recorder percentiles agree with summary() instead of raising."""
    rec = LatencyRecorder()
    assert rec.percentile(0.5) == 0.0
    assert rec.p50 == 0.0
    assert rec.p99 == 0.0
    assert rec.p50 == rec.summary()["p50"]
    assert rec.p99 == rec.summary()["p99"]


def test_latency_recorder_empty_percentile_still_validates_fraction():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.percentile(1.5)
    with pytest.raises(ValueError):
        rec.percentile(-0.1)


def test_latency_recorder_nonempty_percentile_unchanged():
    rec = LatencyRecorder()
    for value in [10, 20, 30, 40, 50]:
        rec.record(value)
    assert rec.percentile(0.5) == 30
    assert rec.p50 == 30


def test_latency_recorder_thinning_preserves_extremes_and_count():
    rec = LatencyRecorder(max_samples=64)
    for value in range(1000):
        rec.record(value)
    assert rec.count == 1000
    assert rec.min == 0
    assert rec.max == 999
    assert rec.total == sum(range(1000))
    # Percentiles remain sane after thinning.
    assert 400 <= rec.p50 <= 600


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=500))
def test_latency_recorder_mean_matches_reference(values):
    rec = LatencyRecorder()
    for value in values:
        rec.record(value)
    assert rec.mean == pytest.approx(sum(values) / len(values))


def test_throughput_meter():
    meter = ThroughputMeter()
    meter.start(0)
    meter.record(500_000_000, operations=5)
    meter.record(1_000_000_000, operations=5)
    assert meter.completed == 10
    assert meter.ops_per_sec() == pytest.approx(10.0)


def test_throughput_meter_stop_extends_window():
    meter = ThroughputMeter()
    meter.start(0)
    meter.record(100_000_000, operations=10)
    meter.stop(1_000_000_000)
    assert meter.ops_per_sec() == pytest.approx(10.0)


def test_throughput_meter_requires_start():
    meter = ThroughputMeter()
    with pytest.raises(ValueError):
        meter.record(10)


def test_throughput_meter_empty_window_reports_zero():
    meter = ThroughputMeter()
    meter.start(100)
    meter.record(100)
    assert meter.ops_per_sec() == 0.0


def test_throughput_meter_unstarted_reports_zero():
    assert ThroughputMeter().ops_per_sec() == 0.0
