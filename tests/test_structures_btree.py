"""Tests for page codecs and the on-disk B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.structures import BTree, MemoryBackend
from repro.structures.pages import (
    BTREE_PAGE_MAGIC,
    FANOUT_MAX,
    PAGE_SIZE,
    decode_page,
    encode_page,
    search_page,
)


# ---------------------------------------------------------------------------
# Pages
# ---------------------------------------------------------------------------


def test_page_roundtrip():
    entries = [(10, 100), (20, 200), (30, 300)]
    page = encode_page(BTREE_PAGE_MAGIC, 2, entries)
    assert len(page) == PAGE_SIZE
    magic, level, decoded = decode_page(page)
    assert (magic, level, decoded) == (BTREE_PAGE_MAGIC, 2, entries)


def test_page_rejects_unsorted():
    with pytest.raises(InvalidArgument):
        encode_page(BTREE_PAGE_MAGIC, 0, [(2, 0), (1, 0)])


def test_page_rejects_overflow():
    entries = [(i, i) for i in range(FANOUT_MAX + 1)]
    with pytest.raises(InvalidArgument):
        encode_page(BTREE_PAGE_MAGIC, 0, entries)


def test_search_page_boundaries():
    page = encode_page(BTREE_PAGE_MAGIC, 0, [(10, 1), (20, 2), (30, 3)])
    assert search_page(page, 5) == (-1, None)
    assert search_page(page, 10) == (0, 1)
    assert search_page(page, 15) == (0, 1)
    assert search_page(page, 30) == (2, 3)
    assert search_page(page, 99) == (2, 3)


@given(st.lists(st.integers(0, 2**63), min_size=1, max_size=FANOUT_MAX,
                unique=True))
def test_search_page_matches_reference(keys):
    keys = sorted(keys)
    entries = [(key, index) for index, key in enumerate(keys)]
    page = encode_page(BTREE_PAGE_MAGIC, 0, entries)
    for probe in keys + [0, 2**64 - 1, keys[0] + 1]:
        index, value = search_page(page, probe)
        expected = max((i for i, (k, _v) in enumerate(entries)
                        if k <= probe), default=-1)
        assert index == expected
        if expected >= 0:
            assert value == entries[expected][1]


# ---------------------------------------------------------------------------
# B-tree
# ---------------------------------------------------------------------------


def build_tree(num_keys, fanout=4, stride=3):
    backend = MemoryBackend()
    items = [(i * stride + 1, i * 100) for i in range(num_keys)]
    tree = BTree.build(backend, items, fanout=fanout)
    return tree, dict(items)


def test_single_leaf_tree():
    tree, reference = build_tree(3)
    assert tree.depth == 1
    for key, value in reference.items():
        assert tree.lookup(key) == value


def test_multi_level_lookup():
    tree, reference = build_tree(200, fanout=4)
    assert tree.depth >= 4
    for key, value in reference.items():
        assert tree.lookup(key) == value


def test_lookup_missing_keys():
    tree, reference = build_tree(50, fanout=4)
    assert tree.lookup(0) is None          # below all keys
    assert tree.lookup(2) is None          # between keys
    assert tree.lookup(10**9) is None      # above all keys


def test_lookup_traced_visits_depth_pages():
    tree, reference = build_tree(200, fanout=4)
    key = next(iter(reference))
    value, visited = tree.lookup_traced(key)
    assert value == reference[key]
    assert len(visited) == tree.depth
    assert visited[0] == tree.meta.root_offset


def test_depth_control():
    for depth in range(1, 6):
        keys = BTree.keys_for_depth(depth, fanout=4)
        items = [(i, i) for i in range(keys)]
        tree = BTree.build(MemoryBackend(), items, fanout=4)
        assert tree.depth == depth, f"expected depth {depth}"


def test_build_rejects_bad_input():
    with pytest.raises(InvalidArgument):
        BTree.build(MemoryBackend(), [])
    with pytest.raises(InvalidArgument):
        BTree.build(MemoryBackend(), [(2, 0), (1, 0)])
    with pytest.raises(InvalidArgument):
        BTree.build(MemoryBackend(), [(1, 0), (1, 1)])
    with pytest.raises(InvalidArgument):
        BTree.build(MemoryBackend(), [(1, 0)], fanout=1)


def test_range_scan():
    tree, reference = build_tree(100, fanout=5, stride=2)
    low, high = 21, 101
    expected = sorted((k, v) for k, v in reference.items()
                      if low <= k < high)
    assert tree.range_scan(low, high) == expected


def test_range_scan_full():
    tree, reference = build_tree(64, fanout=4)
    assert tree.range_scan(0, 2**64 - 1) == sorted(reference.items())


def test_reopen_from_backend():
    backend = MemoryBackend()
    items = [(i, i * 7) for i in range(100)]
    BTree.build(backend, items, fanout=8)
    reopened = BTree(backend)
    assert reopened.lookup(42) == 42 * 7
    assert reopened.meta.num_keys == 100


@settings(max_examples=25)
@given(st.sets(st.integers(0, 2**40), min_size=1, max_size=300),
       st.integers(2, 16))
def test_btree_matches_dict_reference(keys, fanout):
    items = [(key, key ^ 0xABCD) for key in sorted(keys)]
    tree = BTree.build(MemoryBackend(), items, fanout=fanout)
    for key, value in items:
        assert tree.lookup(key) == value
    for probe in list(keys)[:10]:
        assert tree.lookup(probe + 1) == (
            (probe + 1) ^ 0xABCD if probe + 1 in keys else None)
