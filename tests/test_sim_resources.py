"""Unit tests for resources, CPU sets, and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim import CpuSet, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    completion_times = []

    def worker(sim):
        yield from res.execute(100)
        completion_times.append(sim.now)

    for _ in range(4):
        sim.spawn(worker(sim))
    sim.run()
    # Two run in parallel, then the next two.
    assert completion_times == [100, 100, 200, 200]


def test_resource_priority_orders_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        yield from res.execute(50)

    def worker(sim, tag, priority):
        yield sim.timeout(1)  # let the holder grab the slot first
        yield from res.execute(10, priority=priority)
        order.append(tag)

    sim.spawn(holder(sim))
    sim.spawn(worker(sim, "low", priority=10))
    sim.spawn(worker(sim, "high", priority=0))
    sim.run()
    assert order == ["high", "low"]


def test_resource_fifo_within_priority():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        yield from res.execute(50)

    def worker(sim, tag):
        yield sim.timeout(1)
        yield from res.execute(10, priority=5)
        order.append(tag)

    sim.spawn(holder(sim))
    for tag in ["a", "b", "c"]:
        sim.spawn(worker(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_release_ungranted_request_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()  # queued, not granted
    sim.run()
    assert first.granted
    with pytest.raises(SimulationError):
        res.release(second)


def test_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_busy_time_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def worker(sim, cost):
        yield from res.execute(cost)

    sim.spawn(worker(sim, 100))
    sim.spawn(worker(sim, 300))
    sim.run()
    assert res.busy_time() == 400
    assert sim.now == 300


def test_cpuset_utilisation():
    sim = Simulator()
    cpu = CpuSet(sim, cores=2)

    def worker(sim):
        yield from cpu.run_thread(100)

    sim.spawn(worker(sim))
    sim.run()
    assert sim.now == 100
    assert cpu.utilisation() == pytest.approx(0.5)


def test_cpuset_irq_preempts_queued_threads():
    sim = Simulator()
    cpu = CpuSet(sim, cores=1)
    order = []

    def thread(sim, tag):
        yield sim.timeout(1)
        yield from cpu.run_thread(10)
        order.append(tag)

    def irq(sim):
        yield sim.timeout(2)
        yield from cpu.run_irq(1)
        order.append("irq")

    def holder(sim):
        yield from cpu.run_thread(20)

    sim.spawn(holder(sim))
    sim.spawn(thread(sim, "t1"))
    sim.spawn(irq(sim))
    sim.run()
    assert order[0] == "irq"


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    def producer(sim):
        for item in [1, 2, 3]:
            yield sim.timeout(10)
            store.put(item)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert received == [1, 2, 3]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim):
        item = yield store.get()
        return item, sim.now

    def producer(sim):
        yield sim.timeout(500)
        store.put("late")

    proc = sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert proc.value == ("late", 500)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    assert len(store) == 1
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_multiple_waiters_served_in_order():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, tag):
        item = yield store.get()
        received.append((tag, item))

    sim.spawn(consumer(sim, "first"))
    sim.spawn(consumer(sim, "second"))

    def producer(sim):
        yield sim.timeout(1)
        store.put("a")
        store.put("b")

    sim.spawn(producer(sim))
    sim.run()
    assert received == [("first", "a"), ("second", "b")]
