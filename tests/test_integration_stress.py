"""Cross-module stress tests: concurrency, churn, and global invariants."""

import pytest

from chainutil import build_machine
from repro.bench import BtreeBench
from repro.core import Hook
from repro.structures.pages import PAGE_SIZE


def test_concurrent_chains_under_extent_churn_stay_correct():
    """Six chain threads race an extent-churn injector; every lookup must
    return the right value, and the accounting must balance the trace."""
    bench = BtreeBench(4, seed=21)
    kernel = bench.kernel
    sim = bench.sim
    fs = kernel.fs
    inode = fs.lookup("/index")
    # Sacrificial appendix block the injector punches (tree data intact).
    appendix = (inode.size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
    fs.write_sync(inode, appendix, b"\x00" * PAGE_SIZE)

    stop_at = 4_000_000
    lookups = []

    def injector():
        while sim.now < stop_at:
            yield sim.timeout(300_000)
            fs.punch_range(inode, appendix, PAGE_SIZE)
            fs.write_sync(inode, appendix, b"\x00" * PAGE_SIZE)

    def worker(index):
        proc = kernel.spawn_process(f"w{index}")
        fd = yield from kernel.sys_open(proc, "/index")
        yield from bench.bpf.install(proc, fd, bench.program,
                                     hook=Hook.NVME)
        next_key = bench._key_stream(index)
        root = bench.tree.meta.root_offset
        while sim.now < stop_at:
            key = next_key()
            result = yield from bench.bpf.read_chain_robust(
                proc, fd, root, PAGE_SIZE, args=(key,), max_retries=32)
            lookups.append((key, result.value, result.value2))

    sim.spawn(injector(), name="churn")
    for index in range(6):
        sim.spawn(worker(index), name=f"worker-{index}")
    sim.run(until=stop_at)

    assert len(lookups) > 100
    reference = dict(zip(bench.keys, range(len(bench.keys))))
    for key, value, found in lookups:
        assert found == 1, f"key {key} reported missing"
        assert value == reference[key]
    # Churn really happened and was survived.
    assert bench.bpf.cache.invalidations > 3
    assert bench.bpf.engine.extent_aborts > 0


def test_accounting_matches_device_trace():
    """Total charged resubmissions == recycled commands the device saw."""
    bench = BtreeBench(5, seed=22)
    # Rebuild the bench machine with tracing on.
    from repro.bench.runner import BtreeBench as BB

    bench = BB(5, seed=22)
    bench.kernel.trace.enabled = True
    sim = bench.sim
    stop_at = 3_000_000

    def worker(index):
        kernel = bench.kernel
        proc = kernel.spawn_process(f"w{index}")
        fd = yield from kernel.sys_open(proc, "/index")
        yield from bench.bpf.install(proc, fd, bench.program,
                                     hook=Hook.NVME)
        next_key = bench._key_stream(index)
        root = bench.tree.meta.root_offset
        while sim.now < stop_at:
            yield from bench.bpf.read_chain(proc, fd, root, PAGE_SIZE,
                                            args=(next_key(),))

    for index in range(4):
        sim.spawn(worker(index), name=f"worker-{index}")
    sim.run(until=stop_at)
    sim.run()  # drain in-flight chains so submit/complete counts align

    charged = sum(bench.bpf.accounting.totals.values())
    recycled = bench.kernel.trace.count(source="bpf-recycle")
    assert charged == recycled > 0


def test_simulation_is_bit_for_bit_reproducible():
    """The same seed yields the same timeline, counts, and totals."""

    def run_once():
        bench = BtreeBench(4, seed=33)
        sim = bench.sim
        stop_at = 2_000_000
        finished = []

        def worker(index):
            kernel = bench.kernel
            proc = kernel.spawn_process(f"w{index}")
            fd = yield from kernel.sys_open(proc, "/index")
            yield from bench.bpf.install(proc, fd, bench.program,
                                         hook=Hook.NVME)
            next_key = bench._key_stream(index)
            root = bench.tree.meta.root_offset
            while sim.now < stop_at:
                result = yield from bench.bpf.read_chain(
                    proc, fd, root, PAGE_SIZE, args=(next_key(),))
                finished.append((sim.now, result.value))

        for index in range(3):
            sim.spawn(worker(index), name=f"w{index}")
        sim.run(until=stop_at)
        return finished, dict(bench.bpf.accounting.totals)

    first = run_once()
    second = run_once()
    assert first == second


def test_mixed_hooks_and_plain_readers_coexist():
    """NVMe chains, syscall chains, and plain readers share one machine."""
    sim, kernel, bpf = build_machine()
    from chainutil import linked_file_bytes, walker_program

    order = list(range(6))
    kernel.create_file("/list", linked_file_bytes(order))
    kernel.create_file("/plain", bytes(1 << 16))
    program_nvme = walker_program(bpf)
    program_sys = walker_program(bpf)
    stop_at = 2_000_000
    counts = {"nvme": 0, "syscall": 0, "plain": 0}

    def chain_worker(tag, hook, program):
        proc = kernel.spawn_process(tag)
        fd = yield from kernel.sys_open(proc, "/list")
        yield from bpf.install(proc, fd, program, hook=hook)
        while sim.now < stop_at:
            result = yield from bpf.read_chain(proc, fd, 0, 4096)
            assert result.value == 1000 + order[-1]
            counts[tag] += 1

    def plain_worker():
        proc = kernel.spawn_process("plain")
        fd = yield from kernel.sys_open(proc, "/plain")
        offset = 0
        while sim.now < stop_at:
            result = yield from kernel.sys_pread(proc, fd, offset, 512)
            assert len(result.data) == 512
            offset = (offset + 512) % (1 << 16)
            counts["plain"] += 1

    sim.spawn(chain_worker("nvme", Hook.NVME, program_nvme))
    sim.spawn(chain_worker("syscall", Hook.SYSCALL, program_sys))
    sim.spawn(plain_worker())
    sim.run(until=stop_at)

    assert all(count > 10 for count in counts.values()), counts
    # NVMe chains complete faster than syscall chains on the same machine.
    assert counts["nvme"] > counts["syscall"]
