"""BPF maps as chain-visible state (the paper's "outside state" in §1/§4).

Storage programs frequently need state beyond the block in flight — here a
chain program keeps a per-depth histogram in an array map while it
traverses, and user space reads the statistics afterwards, exactly the
program/application split real eBPF deployments use.
"""

import pytest

from chainutil import build_machine, linked_file_bytes
from repro.core import Hook, storage_ctx_layout
from repro.ebpf import ArrayMap, HashMap, Program, assemble

# Walker that also bumps histogram[chain_depth] in an array map each hop.
COUNTING_WALKER = """
    mov   r6, r1          ; save ctx
    ldxdw r7, [r1+24]     ; chain_depth
    stxw  [r10-4], r7     ; map key = depth (u32)
    mov   r1, 1           ; map id
    mov   r2, r10
    add   r2, -4
    call  map_lookup
    jeq   r0, 0, after
    ldxdw r2, [r0+0]
    add   r2, 1
    stxdw [r0+0], r2      ; histogram[depth] += 1
after:
    ldxdw r2, [r6+0]      ; data pointer
    ldxdw r3, [r2+0]      ; next offset
    lddw  r4, 0xffffffffffffffff
    jeq   r3, r4, done
    mov   r5, 1
    stxdw [r6+72], r5     ; ACTION_RESUBMIT
    stxdw [r6+80], r3
    mov   r0, 0
    exit
done:
    ldxdw r5, [r2+8]
    mov   r4, 2
    stxdw [r6+72], r4     ; ACTION_RETURN_VALUE
    stxdw [r6+88], r5
    mov   r0, 0
    exit
"""

ORDER = [0, 3, 1, 4, 2]


def make_machine(hook=Hook.NVME, lookups=5):
    sim, kernel, bpf = build_machine()
    kernel.create_file("/list", linked_file_bytes(ORDER))
    histogram = ArrayMap(value_size=8, max_entries=16, name="histogram")
    program = Program(assemble(COUNTING_WALKER, bpf.helpers.names()),
                      storage_ctx_layout(4096, 256), name="counting-walker")
    bpf.verify_program(program, maps={1: histogram})
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        yield from bpf.install(proc, fd, program, hook=hook,
                               maps={1: histogram})
        results = []
        for _ in range(lookups):
            result = yield from bpf.read_chain(proc, fd, 0, 4096)
            results.append(result)
        return results

    results = kernel.run_syscall(workload())
    return histogram, results


@pytest.mark.parametrize("hook", [Hook.NVME, Hook.SYSCALL])
def test_chain_program_updates_map_per_hop(hook):
    lookups = 4
    histogram, results = make_machine(hook=hook, lookups=lookups)
    for result in results:
        assert result.value == 1000 + ORDER[-1]
    # chain_depth runs 1..len(ORDER) across each lookup.
    for depth in range(1, len(ORDER) + 1):
        count = int.from_bytes(histogram.lookup_index(depth), "little")
        assert count == lookups, f"depth {depth}"
    assert int.from_bytes(histogram.lookup_index(0), "little") == 0
    assert int.from_bytes(histogram.lookup_index(6), "little") == 0


def test_map_state_visible_to_user_space_between_chains():
    histogram, _results = make_machine(lookups=1)
    before = int.from_bytes(histogram.lookup_index(1), "little")
    assert before == 1
    # User space may also mutate the shared map between chain runs.
    histogram.update((1).to_bytes(4, "little"), (100).to_bytes(8, "little"))
    histogram2, _ = make_machine(lookups=2)
    assert int.from_bytes(histogram2.lookup_index(1), "little") == 2


def test_install_with_unknown_map_id_rejected():
    from repro.errors import VerifierError

    sim, kernel, bpf = build_machine()
    kernel.create_file("/list", linked_file_bytes(ORDER))
    program = Program(assemble(COUNTING_WALKER, bpf.helpers.names()),
                      storage_ctx_layout(4096, 256), name="no-map")
    with pytest.raises(VerifierError, match="unknown map id"):
        bpf.verify_program(program, maps={})


def test_hash_map_works_in_chain_too():
    source = COUNTING_WALKER  # same program; hash map instead of array
    sim, kernel, bpf = build_machine()
    kernel.create_file("/list", linked_file_bytes(ORDER))
    stats = HashMap(key_size=4, value_size=8, max_entries=32, name="stats")
    for depth in range(1, len(ORDER) + 1):
        stats.update(depth.to_bytes(4, "little"), bytes(8))
    program = Program(assemble(source, bpf.helpers.names()),
                      storage_ctx_layout(4096, 256), name="hash-walker")
    bpf.verify_program(program, maps={1: stats})
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        yield from bpf.install(proc, fd, program, maps={1: stats})
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.value == 1000 + ORDER[-1]
    for depth in range(1, len(ORDER) + 1):
        value = stats.lookup(depth.to_bytes(4, "little"))
        assert int.from_bytes(value, "little") == 1
