"""Unit tests for the instruction set and the binary encoder/decoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblerError
from repro.ebpf.isa import Instruction, decode, encode


def test_instruction_validates_registers():
    with pytest.raises(AssemblerError):
        Instruction("mov", dst=11)
    with pytest.raises(AssemblerError):
        Instruction("mov", dst=0, src=12)


def test_instruction_validates_offset_range():
    with pytest.raises(AssemblerError):
        Instruction("jeq", dst=0, offset=2**15)
    Instruction("jeq", dst=0, offset=2**15 - 1)  # max ok


def test_instruction_validates_imm_range():
    with pytest.raises(AssemblerError):
        Instruction("mov", dst=0, imm=2**32)
    Instruction("lddw", dst=0, imm=2**63)  # 64-bit ok for lddw
    with pytest.raises(AssemblerError):
        Instruction("lddw", dst=0, imm=2**64)


def test_encode_lddw_uses_two_slots():
    blob = encode([Instruction("lddw", dst=3, imm=0x1122334455667788)])
    assert len(blob) == 16
    decoded = decode(blob)
    assert decoded == [Instruction("lddw", dst=3, imm=0x1122334455667788)]


def test_encode_decode_exit():
    assert decode(encode([Instruction("exit")])) == [Instruction("exit")]


def test_decode_rejects_ragged_input():
    with pytest.raises(AssemblerError):
        decode(b"\x00" * 7)


def test_decode_rejects_truncated_lddw():
    blob = encode([Instruction("lddw", dst=0, imm=1)])
    with pytest.raises(AssemblerError):
        decode(blob[:8])


_SAMPLE_INSNS = [
    Instruction("mov", dst=1, imm=42),
    Instruction("mov", dst=2, src=1, src_is_reg=True),
    Instruction("add", dst=1, imm=-5),
    Instruction("add32", dst=1, src=2, src_is_reg=True),
    Instruction("neg", dst=3),
    Instruction("arsh", dst=4, imm=3),
    Instruction("lddw", dst=5, imm=2**40),
    Instruction("ldxb", dst=1, src=2, offset=10),
    Instruction("ldxdw", dst=1, src=10, offset=-8),
    Instruction("stxw", dst=10, src=3, offset=-16),
    Instruction("sth", dst=10, offset=-4, imm=7),
    Instruction("jeq", dst=1, imm=0, offset=2),
    Instruction("jsgt", dst=1, src=2, offset=-3, src_is_reg=True),
    Instruction("jset", dst=4, imm=0xFF, offset=1),
    Instruction("ja", offset=5),
    Instruction("call", imm=2),
    Instruction("exit"),
]


def test_roundtrip_sample_program():
    assert decode(encode(_SAMPLE_INSNS)) == _SAMPLE_INSNS


_alu_ops = st.sampled_from(
    ["add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh", "rsh",
     "arsh", "mov"]
)
_regs = st.integers(min_value=0, max_value=10)
_imms = st.integers(min_value=-(2**31), max_value=2**31 - 1)
_offsets = st.integers(min_value=-(2**15), max_value=2**15 - 1)


@st.composite
def _instructions(draw):
    form = draw(st.sampled_from(["alu", "alu32", "jmp", "ldx", "stx", "st",
                                 "lddw", "call", "exit", "ja"]))
    if form in ("alu", "alu32"):
        op = draw(_alu_ops) + ("32" if form == "alu32" else "")
        if draw(st.booleans()):
            return Instruction(op, dst=draw(_regs), src=draw(_regs),
                               src_is_reg=True)
        return Instruction(op, dst=draw(_regs), imm=draw(_imms))
    if form == "jmp":
        op = draw(st.sampled_from(["jeq", "jne", "jgt", "jge", "jlt", "jle",
                                   "jsgt", "jsge", "jslt", "jsle", "jset"]))
        if draw(st.booleans()):
            return Instruction(op, dst=draw(_regs), src=draw(_regs),
                               offset=draw(_offsets), src_is_reg=True)
        return Instruction(op, dst=draw(_regs), imm=draw(_imms),
                           offset=draw(_offsets))
    if form in ("ldx", "stx", "st"):
        size = draw(st.sampled_from(["b", "h", "w", "dw"]))
        if form == "ldx":
            return Instruction(f"ldx{size}", dst=draw(_regs), src=draw(_regs),
                               offset=draw(_offsets))
        if form == "stx":
            return Instruction(f"stx{size}", dst=draw(_regs), src=draw(_regs),
                               offset=draw(_offsets))
        return Instruction(f"st{size}", dst=draw(_regs),
                           offset=draw(_offsets), imm=draw(_imms))
    if form == "lddw":
        return Instruction("lddw", dst=draw(_regs),
                           imm=draw(st.integers(min_value=0,
                                                max_value=2**64 - 1)))
    if form == "call":
        return Instruction("call", imm=draw(st.integers(min_value=0,
                                                        max_value=1000)))
    if form == "ja":
        return Instruction("ja", offset=draw(_offsets))
    return Instruction("exit")


@given(st.lists(_instructions(), min_size=1, max_size=40))
def test_roundtrip_property(instructions):
    assert decode(encode(instructions)) == instructions
