"""repro.cluster: ring placement, replication, crash failover, rejoin.

Covers the consistent-hash ring (determinism, balance, validation), the
durable record codec, ack-after-replica replication (zero replica lag
in steady state), the headline robustness guarantee — killing one of N
targets mid-workload loses **zero acknowledged writes** and serves
**zero stale reads** across the failover — plus journal-replay rejoin
with catch-up, chain pushdown surviving promotion and reinstalling on
the rejoined target, and whole-cluster determinism.
"""

import pytest

from repro.bench.runner import NVM2_BENCH, choose_fanout
from repro.cluster import (
    ClusterClient,
    DATA_PATH,
    HashRing,
    RECORD_SIZE,
    StorageCluster,
    decode_record,
    encode_record,
    stable_hash,
)
from repro.core.library import index_traversal_program
from repro.errors import Errno, InvalidArgument, RemoteError
from repro.faults import FaultSpec
from repro.sim import Simulator


def build_cluster(shards=3, seed=11, capacity_keys=64, **kwargs):
    """A small cluster plus one routed client; returns the parts."""
    sim = Simulator()
    cluster = StorageCluster(sim, shards, model=NVM2_BENCH, seed=seed,
                             capacity_keys=capacity_keys, **kwargs)
    # Short client timeouts so crash detection stays cheap in sim time.
    client = ClusterClient(cluster, timeout_ns=200_000, max_retries=2)
    return sim, cluster, client


def run_puts(sim, client, items):
    """Drive ``client.put`` for every (key, value); returns versions."""
    def workload():
        versions = []
        for key, value in items:
            versions.append((yield from client.put(key, value)))
        return versions
    return sim.run_process(workload())


def run_gets(sim, client, keys):
    """Drive ``client.get`` for every key; returns (value, version, found)."""
    def workload():
        replies = []
        for key in keys:
            replies.append((yield from client.get(key)))
        return replies
    return sim.run_process(workload())


def keys_by_primary(cluster, target_id, universe):
    """Keys in ``universe`` whose shard's *current* primary is target_id."""
    return [key for key in universe
            if cluster.primary[cluster.ring.shard_for(key)] == target_id]


# ---------------------------------------------------------------------------
# Hash ring
# ---------------------------------------------------------------------------


def test_ring_is_deterministic_across_instances():
    first = HashRing(range(8))
    second = HashRing(range(8))
    placement = [first.shard_for(key) for key in range(1000)]
    assert placement == [second.shard_for(key) for key in range(1000)]
    # BLAKE2b, not the salted builtin hash(): the exact value is part
    # of the contract — a new process (PYTHONHASHSEED and all) must
    # place every key identically or replication targets diverge.
    assert stable_hash(b"key-0") == 0x8655DB8F4C7D5137
    assert stable_hash(b"a") != stable_hash(b"b")


def test_ring_balances_load_within_2x():
    ring = HashRing(range(8), vnodes=64)
    counts = ring.histogram(range(10_000))
    assert set(counts) == set(range(8))
    mean = 10_000 / 8
    assert max(counts.values()) < 2 * mean
    assert min(counts.values()) > 0


def test_ring_placement_mostly_stable_when_growing():
    # Consistent hashing's point: adding a shard moves ~1/N of keys,
    # not almost all of them (key % N would reshuffle ~everything).
    before = HashRing(range(4))
    after = HashRing(range(5))
    moved = sum(1 for key in range(2000)
                if before.shard_for(key) != after.shard_for(key))
    assert 0 < moved < 2000 * 0.45


def test_ring_validation():
    with pytest.raises(InvalidArgument, match="at least one shard"):
        HashRing([])
    with pytest.raises(InvalidArgument, match="vnodes"):
        HashRing(range(2), vnodes=0)


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------


def test_record_codec_roundtrip():
    record = encode_record(7, 3, 123456)
    assert len(record) == RECORD_SIZE
    assert decode_record(record) == (7, 3, 123456)


def test_record_codec_rejects_junk():
    assert decode_record(bytes(RECORD_SIZE)) is None       # empty slot
    assert decode_record(b"\x01") is None                  # short
    assert decode_record(encode_record(7, 0, 9)) is None   # version 0
    garbled = b"\xff" + encode_record(7, 3, 9)[1:]
    assert decode_record(garbled) is None                  # bad magic


# ---------------------------------------------------------------------------
# Replication in steady state
# ---------------------------------------------------------------------------


def test_put_get_and_versions_are_monotonic():
    sim, cluster, client = build_cluster(shards=3)
    keys = list(range(12))
    first = run_puts(sim, client, [(key, key * 10) for key in keys])
    assert first == [1] * len(keys)
    second = run_puts(sim, client, [(key, key * 10 + 1) for key in keys])
    assert second == [2] * len(keys)
    for value, version, found in run_gets(sim, client, keys):
        assert found and version == 2
    assert [value for value, _, _ in run_gets(sim, client, keys)] == \
        [key * 10 + 1 for key in keys]
    assert client.stale_reads == 0


def test_ack_after_replica_means_zero_lag():
    sim, cluster, client = build_cluster(shards=4)
    run_puts(sim, client, [(key, key) for key in range(32)])
    for shard in range(cluster.num_shards):
        assert cluster.replica_lag(shard) == 0
    assert sum(cluster.shard_puts.values()) == 32
    # Every acked record really is on the replica (same version table).
    for key in range(32):
        shard = cluster.ring.shard_for(key)
        primary = cluster.targets[cluster.primary[shard]]
        replica = cluster.targets[cluster.replica[shard]]
        assert replica.versions.get(key) == primary.versions.get(key) == 1


def test_single_shard_cluster_has_no_replica():
    sim, cluster, client = build_cluster(shards=1)
    assert cluster.replica[0] is None
    assert run_puts(sim, client, [(3, 30), (3, 31)]) == [1, 2]
    (value, version, found), = run_gets(sim, client, [3])
    assert (value, version, found) == (31, 2, True)


def test_preload_lands_on_primary_and_replica():
    sim, cluster, client = build_cluster(shards=3)
    cluster.preload([(key, key * 7) for key in range(16)])
    for value, version, found in run_gets(sim, client, range(16)):
        assert found and version == 1
    for key in range(16):
        shard = cluster.ring.shard_for(key)
        replica = cluster.targets[cluster.replica[shard]]
        assert replica.versions[key] == 1


def test_key_outside_capacity_is_typed_refusal():
    sim, cluster, client = build_cluster(shards=2, capacity_keys=8)

    def workload():
        yield from client.put(8, 1)

    with pytest.raises(RemoteError) as excinfo:
        sim.run_process(workload())
    assert excinfo.value.remote_errno is Errno.EINVAL
    # The refusal did not take the target down.
    assert run_puts(sim, client, [(7, 70)]) == [1]


# ---------------------------------------------------------------------------
# Crash, failover, read-your-writes
# ---------------------------------------------------------------------------


def test_crash_failover_loses_no_acked_write():
    sim, cluster, client = build_cluster(shards=3)
    keys = list(range(24))
    run_puts(sim, client, [(key, key * 100) for key in keys])
    run_puts(sim, client, [(key, key * 100 + 1) for key in keys[:8]])
    acked = dict(client.acked)

    cluster.crash_target(0)
    # The crashed target's shard promotes on first detected timeout;
    # every acked write is still served at >= its acked version.
    for key, (value, version, found) in zip(keys, run_gets(sim, client,
                                                           keys)):
        assert found, key
        want_version, want_value = acked[key]
        assert version >= want_version
        assert value == want_value
    assert client.stale_reads == 0
    assert cluster.failovers == 1
    assert client.failovers_observed >= 1
    assert client.availability_gap_ns is not None
    assert client.availability_gap_ns > 0
    # A dead machine answers nothing — not even refusals.
    assert client.conns[0].dropped_requests > 0
    # Shard 0's new primary is the old replica; the dead target backs it.
    assert cluster.primary[0] != 0
    assert cluster.replica[0] == 0


def test_writes_continue_after_failover_with_version_continuity():
    sim, cluster, client = build_cluster(shards=3)
    victim_keys = keys_by_primary(cluster, 0, range(32))
    assert victim_keys, "need at least one key on the victim's shard"
    run_puts(sim, client, [(key, 1) for key in victim_keys])
    cluster.crash_target(0)
    # Re-PUT through the promoted primary: versions continue the acked
    # sequence (the replica had every acked stamp), reads stay fresh.
    versions = run_puts(sim, client, [(key, 2) for key in victim_keys])
    assert versions == [2] * len(victim_keys)
    for value, version, found in run_gets(sim, client, victim_keys):
        assert (value, version, found) == (2, 2, True)
    assert client.stale_reads == 0
    # The promoted shard now has no live replica, so its lag grows.
    assert cluster.replica_lag(0) >= len(victim_keys)


def test_report_timeout_on_live_target_is_spurious():
    sim, cluster, client = build_cluster(shards=3)
    assert cluster.report_timeout(1) == []
    assert cluster.failovers == 0
    assert cluster.primary == {0: 0, 1: 1, 2: 2}


def test_fault_plan_cuts_power_mid_workload():
    spec = FaultSpec(seed=11, target_crash_after_rpcs=10)
    sim, cluster, client = build_cluster(shards=3, fault_spec=spec,
                                         crash_victim=0)
    keys = list(range(24))
    run_puts(sim, client, [(key, key) for key in keys])
    assert cluster.targets[0].crashed
    assert cluster.crash_ts is not None
    assert cluster.failovers == 1
    # Every PUT the client saw acked is still readable post-failover.
    for key, (value, version, found) in zip(keys, run_gets(sim, client,
                                                           keys)):
        want_version, want_value = client.acked[key]
        assert found and version >= want_version and value == want_value
    assert client.stale_reads == 0


# ---------------------------------------------------------------------------
# Rejoin
# ---------------------------------------------------------------------------


def test_rejoin_replays_journal_and_catches_up():
    sim, cluster, client = build_cluster(shards=3)
    run_puts(sim, client, [(key, key) for key in range(24)])
    cluster.crash_target(0)
    # Failover, then more writes the dead target never saw.
    run_puts(sim, client, [(key, key + 1) for key in range(24)])

    report = sim.run_process(cluster.rejoin(0))
    assert report.fsck_ok
    assert report.caught_up > 0
    assert cluster.rejoins == 1
    assert not cluster.targets[0].crashed
    # Target 0 now backs every shard it replicates with zero lag...
    for shard, replica in cluster.replica.items():
        if replica == 0:
            assert cluster.replica_lag(shard) == 0
    # ...and its version table matches the promoted primary's for the
    # keys it caught up (including writes it missed while dead).
    for shard, replica in cluster.replica.items():
        if replica != 0:
            continue
        primary = cluster.targets[cluster.primary[shard]]
        for key in primary.versions:
            if cluster.ring.shard_for(key) == shard:
                assert cluster.targets[0].versions.get(key) == \
                    primary.versions[key]
    # Replication to the rejoined replica resumes for new PUTs.
    shard0_keys = [key for key in range(64)
                   if cluster.ring.shard_for(key) == 0][:2]
    before = {key: cluster.targets[0].versions.get(key, 0)
              for key in shard0_keys}
    run_puts(sim, client, [(key, 9) for key in shard0_keys])
    for key in shard0_keys:
        # Caught up, the rejoined replica's stamp equals the primary's,
        # so the fresh PUT replicates as exactly the next version.
        assert cluster.targets[0].versions[key] == before[key] + 1
    assert cluster.replica_lag(0) == 0


def test_rejoin_requires_a_crashed_target():
    sim, cluster, _client = build_cluster(shards=2)
    with pytest.raises(InvalidArgument, match="not crashed"):
        sim.run_process(cluster.rejoin(0))


# ---------------------------------------------------------------------------
# Chain pushdown across failover and rejoin
# ---------------------------------------------------------------------------


def test_chains_survive_failover_and_reinstall_on_rejoin():
    sim, cluster, client = build_cluster(shards=3)
    fanout = choose_fanout(2)
    items = [(key * 3 + 1, key) for key in range(40)]
    root = cluster.build_index("/cindex", items, fanout=fanout)
    program = index_traversal_program(fanout=fanout)
    sim.run_process(client.install_chains("/cindex", program))
    assert sorted(client.chain_ids) == [0, 1, 2]

    search_keys = [key for key, _value in items]

    def lookup_all():
        hits = []
        for key in search_keys:
            value, found = yield from client.index_get(key,
                                                       root_offset=root)
            hits.append((key, value, found))
        return hits

    for key, value, found in sim.run_process(lookup_all()):
        assert found and value == (key - 1) // 3

    # Kill a target: pushdown GETs route to the promoted primary, whose
    # chain was installed and re-verified independently at setup.
    cluster.crash_target(0)
    for key, value, found in sim.run_process(lookup_all()):
        assert found and value == (key - 1) // 3

    # The rejoined target's chain state died with its file system; a
    # reinstall re-verifies server-side and serves again directly.
    report = sim.run_process(cluster.rejoin(0))
    assert report.fsck_ok
    chain_id = sim.run_process(client.reinstall_chains(0))

    def direct_get(key):
        return (yield from client.remotes[0].remote_btree_get(
            key, mode="pushdown", chain_id=chain_id, root_offset=root))

    value, found, rpcs = sim.run_process(direct_get(search_keys[0]))
    assert found and value == 0
    assert rpcs == 1


# ---------------------------------------------------------------------------
# Observability and determinism
# ---------------------------------------------------------------------------


def test_cluster_metrics_count_failover_rejoin_and_lag():
    from repro.obs import ObsSession

    with ObsSession() as obs:
        sim, cluster, client = build_cluster(shards=3)
        run_puts(sim, client, [(key, key) for key in range(12)])
        cluster.crash_target(0)
        run_gets(sim, client, range(12))   # detection promotes shard 0
        report = sim.run_process(cluster.rejoin(0))
        assert report.fsck_ok

    registry = obs.registry
    assert registry.get("cluster_failovers_total").value(target=0) == 1
    assert registry.get("cluster_rejoins_total").value() == 1
    # The last replicate on every shard left zero lag (pre-crash) and
    # the gauge tracked it per shard.
    lag = registry.get("cluster_replica_lag")
    assert all(lag.value(shard=shard) == 0 for shard in range(3)
               if shard in cluster.shard_puts)


def test_cluster_run_is_deterministic():
    def run():
        sim, cluster, client = build_cluster(shards=3, seed=19)
        run_puts(sim, client, [(key, key) for key in range(20)])
        cluster.crash_target(0)
        gets = run_gets(sim, client, range(20))
        report = sim.run_process(cluster.rejoin(0))
        return (gets, sim.now, cluster.failovers, client.stale_reads,
                client.availability_gap_ns, report.caught_up,
                report.replayed_txns,
                sorted(cluster.targets[0].versions.items()))

    assert run() == run()
