"""ChainHandle lifecycle, ChainStatus compatibility, InstallRequest
validation, and multi-queue determinism."""

import dataclasses

import pytest

from chainutil import build_machine, linked_file_bytes, walker_program
from repro.core import ChainHandle, InstallRequest
from repro.errors import BadFileDescriptor, InvalidArgument
from repro.kernel import ChainStatus, ReadResult


def make_handle(path="/list", order=(0, 1, 2), **config_kwargs):
    """(sim, kernel, bpf, proc, handle) with a walker installed on a
    linked-block file via open_chain."""
    sim, kernel, bpf = build_machine(**config_kwargs)
    kernel.create_file(path, linked_file_bytes(list(order)))
    proc = kernel.spawn_process()
    program = walker_program(bpf)
    handle = kernel.run_syscall(bpf.open_chain(proc, path, program))
    return sim, kernel, bpf, proc, handle


# ---------------------------------------------------------------------------
# ChainHandle lifecycle
# ---------------------------------------------------------------------------


def test_open_chain_returns_live_handle():
    sim, kernel, bpf, proc, handle = make_handle()
    assert isinstance(handle, ChainHandle)
    assert not handle.closed
    assert handle.proc is proc
    assert handle.block_size == 4096
    assert handle.installation is not None
    assert proc.file(handle.fd).bpf_install is handle.installation


def test_handle_read_walks_chain():
    sim, kernel, bpf, proc, handle = make_handle(order=[0, 3, 1, 2])
    result = kernel.run_syscall(handle.read(0))
    assert result.ok
    assert result.status is ChainStatus.OK
    assert result.value == 1002  # payload of the final block (index 2)
    assert result.hops == 4


def test_handle_read_defaults_to_installed_block_size():
    sim, kernel, bpf, proc, handle = make_handle()
    explicit = kernel.run_syscall(handle.read(0, length=4096))
    implicit = kernel.run_syscall(handle.read(0))
    assert implicit.value == explicit.value


def test_handle_read_robust_and_refresh():
    sim, kernel, bpf, proc, handle = make_handle(order=[2, 0, 1])
    assert kernel.run_syscall(handle.refresh()) == 0
    result = kernel.run_syscall(handle.read_robust(2 * 4096))
    assert result.ok
    assert result.value == 1001


def test_handle_close_is_idempotent():
    sim, kernel, bpf, proc, handle = make_handle()
    assert kernel.run_syscall(handle.close()) == 0
    assert handle.closed
    assert proc.open_fds() == 0
    assert handle.installation is None
    # Second close is a no-op, not a BadFileDescriptor.
    assert kernel.run_syscall(handle.close()) == 0


def test_handle_read_after_close_raises():
    sim, kernel, bpf, proc, handle = make_handle()
    kernel.run_syscall(handle.close())
    with pytest.raises(BadFileDescriptor):
        kernel.run_syscall(handle.read(0))


def test_handle_context_manager_tears_down_untimed():
    sim, kernel, bpf, proc, handle = make_handle()
    before = sim.now
    with handle:
        result = kernel.run_syscall(handle.read(0))
        assert result.ok
    after_read = sim.now
    assert handle.closed
    assert proc.open_fds() == 0
    # __exit__ consumed no simulated time (read did).
    assert after_read > before
    assert sim.now == after_read
    # An explicit close after __exit__ stays a no-op.
    assert kernel.run_syscall(handle.close()) == 0


def test_open_chain_releases_fd_on_failed_install():
    sim, kernel, bpf = build_machine()
    kernel.create_file("/list", linked_file_bytes([0, 1]))
    proc = kernel.spawn_process()
    program = walker_program(bpf)
    with pytest.raises(InvalidArgument):
        kernel.run_syscall(bpf.open_chain(proc, "/list", program,
                                          args=(1, 2, 3, 4, 5)))
    assert proc.open_fds() == 0


# ---------------------------------------------------------------------------
# ChainStatus: enum members alias the historical string constants
# ---------------------------------------------------------------------------


def test_chain_status_aliases_readresult_constants():
    assert ReadResult.OK is ChainStatus.OK
    assert ReadResult.EXTENT_INVALIDATED is ChainStatus.EXTENT_INVALIDATED
    assert ReadResult.SPLIT_FALLBACK is ChainStatus.SPLIT_FALLBACK
    assert ReadResult.FAULT_FALLBACK is ChainStatus.FAULT_FALLBACK
    assert ReadResult.CHAIN_LIMIT is ChainStatus.CHAIN_LIMIT
    assert ReadResult.EIO is ChainStatus.EIO


def test_chain_status_compares_and_renders_as_string():
    assert ChainStatus.OK == "ok"
    assert ChainStatus.EXTENT_INVALIDATED == "eextent"
    assert str(ChainStatus.OK) == "ok"
    assert "{}".format(ChainStatus.SPLIT_FALLBACK) == "split-fallback"
    assert f"{ChainStatus.EIO}" == "eio"


def test_read_result_coerces_status_strings():
    result = ReadResult(b"", status="eextent")
    assert result.status is ChainStatus.EXTENT_INVALIDATED
    assert not result.ok


# ---------------------------------------------------------------------------
# InstallRequest: frozen dataclass with field-naming validation
# ---------------------------------------------------------------------------


def _program():
    _sim, _kernel, bpf = build_machine()
    return walker_program(bpf)


def test_install_request_is_frozen():
    request = InstallRequest(_program())
    with pytest.raises(dataclasses.FrozenInstanceError):
        request.block_size = 8192


def test_install_request_normalises_args_and_maps():
    request = InstallRequest(_program(), args=[7, 8], maps=None)
    assert request.args == (7, 8)
    assert request.maps == {}


@pytest.mark.parametrize("kwargs, field", [
    (dict(block_size=0), "block_size"),
    (dict(block_size=-4096), "block_size"),
    (dict(scratch_size=0), "scratch_size"),
    (dict(args=(1, 2, 3, 4, 5)), "args"),
])
def test_install_request_names_bad_field(kwargs, field):
    with pytest.raises(InvalidArgument, match=field):
        InstallRequest(_program(), **kwargs)


def test_install_request_rejects_non_program():
    with pytest.raises(InvalidArgument, match="program"):
        InstallRequest("not a program")


# ---------------------------------------------------------------------------
# Multi-queue determinism and queue locality
# ---------------------------------------------------------------------------


def test_chain_hops_stay_on_originating_queue():
    order = [0, 4, 2, 3, 1]
    sim, kernel, bpf, proc, handle = make_handle(order=order, queue_pairs=4)
    result = kernel.run_syscall(handle.read(0))
    assert result.ok
    home = kernel.queue_for(proc)
    assert kernel.device.queue_completed[home] == len(order)
    others = [count for queue, count in
              enumerate(kernel.device.queue_completed) if queue != home]
    assert sum(others) == 0


def test_mq_scaling_runs_are_byte_identical():
    from repro.bench import mq_scaling, rows_to_json

    kwargs = dict(queue_pairs=(1, 2), threads=(4,), depth=2,
                  duration_ns=200_000)
    first = rows_to_json("scale", mq_scaling(**kwargs))
    second = rows_to_json("scale", mq_scaling(**kwargs))
    assert first == second


def test_single_queue_matches_legacy_timing():
    # queue_pairs=1 without steering must execute the legacy event
    # sequence: same final sim time, same completion count.
    results = []
    for kwargs in ({}, {"queue_pairs": 1, "irq_steering": False}):
        sim, kernel, bpf, proc, handle = make_handle(order=[0, 2, 1],
                                                     **kwargs)
        result = kernel.run_syscall(handle.read(0))
        assert result.ok
        results.append((sim.now, kernel.device.completed, result.value))
    assert results[0] == results[1]
