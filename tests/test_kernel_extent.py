"""Tests for extent trees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.kernel.extent import Extent, ExtentTree


def test_extent_validation():
    with pytest.raises(InvalidArgument):
        Extent(0, 0, 0)
    with pytest.raises(InvalidArgument):
        Extent(-1, 0, 1)


def test_extent_translate():
    extent = Extent(10, 100, 5)
    assert extent.translate(12) == 102
    with pytest.raises(InvalidArgument):
        extent.translate(15)


def test_tree_lookup():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    tree.add(Extent(8, 90, 2))
    assert tree.lookup(2) == 52
    assert tree.lookup(4) is None  # hole
    assert tree.lookup(9) == 91


def test_tree_rejects_overlap():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    with pytest.raises(InvalidArgument):
        tree.add(Extent(2, 80, 4))
    with pytest.raises(InvalidArgument):
        tree.add(Extent(0, 80, 1))


def test_tree_merges_contiguous():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    tree.add(Extent(4, 54, 4))  # physically contiguous too
    assert len(tree) == 1
    assert tree.lookup(7) == 57


def test_tree_does_not_merge_discontiguous():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    tree.add(Extent(4, 90, 4))  # logically adjacent, physically not
    assert len(tree) == 2


def test_version_bumps_on_mutation():
    tree = ExtentTree()
    assert tree.version == 0
    tree.add(Extent(0, 50, 4))
    assert tree.version == 1
    tree.punch(0, 2)
    assert tree.version == 2


def test_punch_middle_splits():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 10))
    punched = tree.punch(3, 4)
    assert punched == [Extent(3, 53, 4)]
    assert tree.lookup(2) == 52
    assert tree.lookup(3) is None
    assert tree.lookup(6) is None
    assert tree.lookup(7) == 57
    assert tree.unmap_events == 1


def test_punch_nothing_is_not_an_unmap_event():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    version = tree.version
    assert tree.punch(10, 5) == []
    assert tree.unmap_events == 0
    assert tree.version == version


def test_map_range_coalesces():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    tree.add(Extent(4, 54, 2))  # merges with previous
    tree.add(Extent(6, 90, 2))
    assert tree.map_range(0, 8) == [(50, 6), (90, 2)]


def test_map_range_hole_rejected():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 2))
    with pytest.raises(InvalidArgument, match="unmapped"):
        tree.map_range(0, 4)


def test_mapped_blocks():
    tree = ExtentTree()
    tree.add(Extent(0, 50, 4))
    tree.add(Extent(10, 90, 6))
    assert tree.mapped_blocks() == 10


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 10)),
                min_size=1, max_size=20))
def test_tree_matches_dict_reference(ops):
    """Adding non-overlapping extents then translating matches a dict."""
    tree = ExtentTree()
    reference = {}
    next_phys = 1000
    for file_block, count in ops:
        blocks = range(file_block, file_block + count)
        if any(block in reference for block in blocks):
            with pytest.raises(InvalidArgument):
                tree.add(Extent(file_block, next_phys, count))
            continue
        tree.add(Extent(file_block, next_phys, count))
        for index, block in enumerate(blocks):
            reference[block] = next_phys + index
        next_phys += count + 7  # keep physical runs disjoint
    for block, phys in reference.items():
        assert tree.lookup(block) == phys
    assert tree.mapped_blocks() == len(reference)
