"""Tests for the benchmark harness (small-scale experiment runs)."""

import pytest

from repro.bench import (
    BtreeBench,
    ablation_resubmit_bound,
    ablation_vm_mode,
    extent_stability,
    fig1_latency_breakdown,
    fig3_throughput,
    fig3c_latency,
    fig3d_iouring,
    format_table,
    run_closed_loop,
    table1_breakdown,
)
from repro.bench.runner import choose_fanout
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Table rendering
# ---------------------------------------------------------------------------


def test_format_table_renders_all_rows():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 1234.5}]
    text = format_table("Demo", ["a", "b"], rows)
    assert "Demo" in text
    assert "1,234" in text or "1234" in text
    assert len(text.splitlines()) == 6


def test_format_table_empty_rows():
    text = format_table("Empty", ["x"], [])
    assert "Empty" in text


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def test_choose_fanout_limits_key_count():
    for depth in range(1, 12):
        fanout = choose_fanout(depth)
        assert 2 <= fanout <= 16
        if depth > 1:
            assert fanout ** (depth - 1) + 1 <= 30_000 or fanout == 2


def test_run_closed_loop_counts_ops():
    sim = Simulator()

    def make_worker(index):
        if False:
            yield

        def one_op():
            yield sim.timeout(1000)

        return one_op

    meter, latency = run_closed_loop(sim, 2, 10_000, make_worker)
    assert meter.completed == 20
    assert latency.mean == 1000


def test_btree_bench_builds_requested_depth():
    for depth in (1, 2, 4):
        bench = BtreeBench(depth)
        assert bench.tree.depth == depth


def test_btree_bench_systems_agree_on_work():
    bench = BtreeBench(3, seed=5)
    latency_baseline = bench.mean_latency("baseline", operations=20)
    bench2 = BtreeBench(3, seed=5)
    latency_nvme = bench2.mean_latency("nvme", operations=20)
    assert latency_nvme < latency_baseline


def test_btree_bench_rejects_unknown_system():
    bench = BtreeBench(2)
    with pytest.raises(Exception):
        bench.throughput("warp-drive", 1, 1_000_000)


# ---------------------------------------------------------------------------
# Experiments (miniature scale, shape checks only)
# ---------------------------------------------------------------------------


def test_fig1_shape():
    rows = fig1_latency_breakdown(reads=30)
    pcts = [row["software_pct"] for row in rows]
    assert pcts == sorted(pcts)
    assert pcts[-1] > 40


def test_table1_matches_cost_model():
    rows = table1_breakdown(reads=30)
    by_layer = {row["layer"]: row for row in rows}
    assert by_layer["ext4"]["measured_ns"] == 2006
    assert by_layer["total"]["measured_ns"] == 6272


def test_fig3_throughput_nvme_wins():
    rows = fig3_throughput("nvme", depths=(4,), threads=(1, 6),
                           duration_ns=2_000_000)
    assert all(row["speedup"] > 1.1 for row in rows)


def test_fig3_throughput_syscall_modest():
    rows = fig3_throughput("syscall", depths=(4,), threads=(1,),
                           duration_ns=2_000_000)
    assert 1.0 < rows[0]["speedup"] < 1.35


def test_fig3_throughput_validates_hook():
    with pytest.raises(ValueError):
        fig3_throughput("timewarp")


def test_fig3c_reduction_grows_with_depth():
    rows = fig3c_latency(depths=(2, 6), operations=30)
    assert rows[1]["nvme_reduction_pct"] > rows[0]["nvme_reduction_pct"]


def test_fig3d_speedup_grows_with_batch():
    rows = fig3d_iouring(depths=(4,), batches=(1, 8),
                         duration_ns=2_000_000)
    assert rows[1]["speedup"] > rows[0]["speedup"]
    assert all(row["speedup"] > 1.0 for row in rows)


def test_extent_stability_counts_changes():
    rows = extent_stability(sim_hours=0.05, ops_per_sec=500,
                            rebuild_overlay=3000, gc_every_rebuilds=3,
                            initial_keys=3000, fanout=32)
    row = rows[0]
    assert row["extent_changes"] > 0
    assert row["invalidations"] == row["unmap_changes"]
    assert row["operations"] == int(0.05 * 3600 * 500)


def test_ablation_resubmit_bound_monotone():
    rows = ablation_resubmit_bound(chain_length=8, bounds=(2, 8),
                                   lookups=5)
    assert rows[0]["kills_per_lookup"] > rows[1]["kills_per_lookup"]
    assert rows[0]["mean_latency_us"] > rows[1]["mean_latency_us"]


def test_ablation_vm_mode_jit_faster():
    rows = ablation_vm_mode(depth=3, operations=20)
    by_mode = {row["mode"]: row for row in rows}
    assert by_mode["jit"]["mean_latency_us"] < \
        by_mode["interp"]["mean_latency_us"]


def test_ablation_app_cache_monotone():
    from repro.bench import ablation_app_cache

    rows = ablation_app_cache(depth=4, cached_levels=(0, 2), operations=20)
    assert rows[0]["mean_latency_us"] > rows[1]["mean_latency_us"]
    assert rows[0]["device_reads_per_lookup"] == 4
    assert rows[1]["device_reads_per_lookup"] == 2


def test_ablation_app_cache_skips_full_depth():
    from repro.bench import ablation_app_cache

    rows = ablation_app_cache(depth=3, cached_levels=(0, 5), operations=5)
    assert len(rows) == 1  # cached_levels >= depth dropped


def test_interference_accounts_chains():
    from repro.bench import interference

    rows = interference(chain_depth=8, plain_threads=2, chain_threads=6,
                        duration_ns=3_000_000)
    alone, loaded = rows
    assert alone["chained_resubmissions"] == 0
    assert loaded["chained_resubmissions"] > 0
    assert loaded["chain_processes_accounted"] == 6
    assert loaded["plain_kreads_per_s"] <= alone["plain_kreads_per_s"]
