"""Tests for the extent file system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import BlockDevice
from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NotADirectory,
)
from repro.kernel.extfs import BLOCK_SIZE, ExtFs
from repro.sim import RandomStreams


def make_fs(blocks=256, max_extent_blocks=32768, scatter=False):
    media = BlockDevice(blocks * 8)
    rng = RandomStreams(5).stream("alloc") if scatter else None
    return ExtFs(media, max_extent_blocks=max_extent_blocks, scatter_rng=rng)


# ---------------------------------------------------------------------------
# Namespace
# ---------------------------------------------------------------------------


def test_create_lookup_unlink():
    fs = make_fs()
    inode = fs.create("/a")
    assert fs.lookup("/a") is inode
    fs.unlink("/a")
    with pytest.raises(FileNotFound):
        fs.lookup("/a")


def test_nested_directories():
    fs = make_fs()
    fs.mkdir("/d")
    fs.mkdir("/d/e")
    inode = fs.create("/d/e/f")
    assert fs.lookup("/d/e/f") is inode
    assert fs.listdir("/d") == ["e"]


def test_create_duplicate_rejected():
    fs = make_fs()
    fs.create("/a")
    with pytest.raises(FileExists):
        fs.create("/a")


def test_create_under_file_rejected():
    fs = make_fs()
    fs.create("/a")
    with pytest.raises(NotADirectory):
        fs.create("/a/b")


def test_unlink_directory_rejected():
    fs = make_fs()
    fs.mkdir("/d")
    with pytest.raises(IsADirectory):
        fs.unlink("/d")


def test_relative_path_rejected():
    fs = make_fs()
    with pytest.raises(InvalidArgument):
        fs.create("a")


def test_rename_moves_and_replaces():
    fs = make_fs()
    a = fs.create("/a")
    fs.write_sync(a, 0, b"x" * BLOCK_SIZE)
    b = fs.create("/b")
    fs.write_sync(b, 0, b"y" * BLOCK_SIZE)
    fs.rename("/a", "/b")
    assert fs.lookup("/b") is a
    assert not fs.exists("/a")


def test_rename_replacing_frees_old_blocks():
    fs = make_fs(blocks=16)
    victim = fs.create("/old")
    fs.write_sync(victim, 0, b"v" * (8 * BLOCK_SIZE))
    free_before = fs._allocator.free_blocks()
    replacement = fs.create("/new")
    fs.write_sync(replacement, 0, b"n" * BLOCK_SIZE)
    fs.rename("/new", "/old")
    assert fs._allocator.free_blocks() == free_before + 8 - 1


# ---------------------------------------------------------------------------
# Data and extents
# ---------------------------------------------------------------------------


def test_write_read_roundtrip():
    fs = make_fs()
    inode = fs.create("/f")
    payload = bytes(range(256)) * 64  # 16 KiB
    fs.write_sync(inode, 0, payload)
    assert fs.read_sync(inode, 0, len(payload)) == payload
    assert inode.size == len(payload)


def test_unaligned_overwrite():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"a" * BLOCK_SIZE)
    fs.write_sync(inode, 100, b"XYZ")
    data = fs.read_sync(inode, 0, BLOCK_SIZE)
    assert data[99:104] == b"aXYZa"


def test_read_hole_returns_zeroes():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 2 * BLOCK_SIZE, b"z" * BLOCK_SIZE)
    assert fs.read_sync(inode, 0, BLOCK_SIZE) == bytes(BLOCK_SIZE)


def test_contiguous_allocation_yields_one_extent():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"q" * (20 * BLOCK_SIZE))
    assert fs.fragmentation_of(inode) == 1


def test_max_extent_blocks_forces_fragmentation():
    fs = make_fs(max_extent_blocks=4)
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"q" * (20 * BLOCK_SIZE))
    assert fs.fragmentation_of(inode) == 5
    # Data is still intact across the extents.
    assert fs.read_sync(inode, 0, 20 * BLOCK_SIZE) == b"q" * (20 * BLOCK_SIZE)


def test_scatter_allocations_fragment_interleaved_files():
    fs = make_fs(scatter=True, max_extent_blocks=2)
    a = fs.create("/a")
    b = fs.create("/b")
    for index in range(8):
        fs.write_sync(a, index * BLOCK_SIZE, b"a" * BLOCK_SIZE)
        fs.write_sync(b, index * BLOCK_SIZE, b"b" * BLOCK_SIZE)
    assert fs.read_sync(a, 0, 8 * BLOCK_SIZE) == b"a" * (8 * BLOCK_SIZE)
    assert fs.fragmentation_of(a) >= 2


def test_map_range_alignment_enforced():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * BLOCK_SIZE)
    with pytest.raises(InvalidArgument):
        fs.map_range(inode, 100, 512)
    with pytest.raises(InvalidArgument):
        fs.map_range(inode, 0, 100)


def test_map_range_sector_granularity():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (2 * BLOCK_SIZE))
    segments = fs.map_range(inode, 512, 512)
    assert len(segments) == 1
    lba, sectors = segments[0]
    assert sectors == 1
    phys = inode.extents.lookup(0)
    assert lba == phys * 8 + 1


def test_truncate_frees_blocks_and_notifies():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (8 * BLOCK_SIZE))
    events = []
    fs.extent_change_listeners.append(lambda ino, kind: events.append(kind))
    fs.truncate(inode, BLOCK_SIZE)
    assert events == ["unmap"]
    assert inode.size == BLOCK_SIZE
    assert inode.extents.mapped_blocks() == 1


def test_grow_notifies_grow_not_unmap():
    fs = make_fs()
    inode = fs.create("/f")
    events = []
    fs.extent_change_listeners.append(lambda ino, kind: events.append(kind))
    fs.write_sync(inode, 0, b"x" * BLOCK_SIZE)
    assert events == ["grow"]


def test_unlink_frees_space():
    fs = make_fs(blocks=16)
    free_at_start = fs._allocator.free_blocks()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (10 * BLOCK_SIZE))
    fs.unlink("/f")
    assert fs._allocator.free_blocks() == free_at_start


def test_no_space():
    fs = make_fs(blocks=4)
    inode = fs.create("/f")
    with pytest.raises(NoSpace):
        fs.write_sync(inode, 0, b"x" * (16 * BLOCK_SIZE))


def test_punch_requires_alignment():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (4 * BLOCK_SIZE))
    with pytest.raises(InvalidArgument):
        fs.punch_range(inode, 100, BLOCK_SIZE)


def test_punch_then_rewrite_reallocates():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (4 * BLOCK_SIZE))
    fs.punch_range(inode, BLOCK_SIZE, BLOCK_SIZE)
    assert inode.extents.lookup(1) is None
    fs.write_sync(inode, BLOCK_SIZE, b"y" * BLOCK_SIZE)
    assert fs.read_sync(inode, BLOCK_SIZE, BLOCK_SIZE) == b"y" * BLOCK_SIZE


@settings(max_examples=30)
@given(st.data())
def test_fs_matches_reference_bytes(data):
    """Random writes/reads agree with an in-memory reference buffer."""
    fs = make_fs(blocks=64)
    inode = fs.create("/f")
    size = 16 * BLOCK_SIZE
    reference = bytearray(size)
    for _ in range(data.draw(st.integers(1, 12))):
        offset = data.draw(st.integers(0, size - 1))
        length = data.draw(st.integers(1, min(4096, size - offset)))
        if data.draw(st.booleans()):
            fill = bytes([data.draw(st.integers(0, 255))]) * length
            fs.write_sync(inode, offset, fill)
            reference[offset : offset + length] = fill
        else:
            assert fs.read_sync(inode, offset, length) == bytes(
                reference[offset : offset + length]
            )
