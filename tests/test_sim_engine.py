"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.engine import AllOf, AnyOf


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)
        yield sim.timeout(250)
        return sim.now

    assert sim.run_process(proc(sim)) == 350
    assert sim.now == 350


def test_zero_timeout_is_allowed():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0)
        return "ok"

    assert sim.run_process(proc(sim)) == "ok"
    assert sim.now == 0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_float_timeout_coerced_to_int_nanoseconds():
    # A float delay must not drift sim.now off integer nanoseconds —
    # even when Timeout is constructed directly, bypassing sim.timeout.
    from repro.sim.engine import Timeout

    sim = Simulator()

    def proc(sim):
        yield Timeout(sim, 10.9)
        yield sim.timeout(5.5)
        return sim.now

    assert sim.run_process(proc(sim)) == 15  # int(10.9) + int(5.5)
    assert isinstance(sim.now, int)


def test_non_numeric_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError, match="non-numeric timeout delay"):
        sim.timeout("soon")


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(10)
        order.append(tag)

    sim.spawn(proc(sim, "a"))
    sim.spawn(proc(sim, "b"))
    sim.spawn(proc(sim, "c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_propagates():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5)
        return 42

    def parent(sim):
        result = yield sim.spawn(child(sim))
        return result + 1

    assert sim.run_process(parent(sim)) == 43


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except ValueError as exc:
            return str(exc)
        return "no exception"

    assert sim.run_process(parent(sim)) == "boom"


def test_unwaited_process_crash_raises():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.spawn(child(sim))
    with pytest.raises(RuntimeError):
        sim.run()


def test_suppress_crashes_flag():
    sim = Simulator(suppress_crashes=True)

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("suppressed")

    proc = sim.spawn(child(sim))
    sim.run()
    assert proc.triggered
    assert isinstance(proc.exception, RuntimeError)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim):
        value = yield gate
        return value

    def opener(sim):
        yield sim.timeout(77)
        gate.succeed("open")

    proc = sim.spawn(waiter(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert proc.value == "open"
    assert sim.now == 77


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_yield_non_event_rejected():
    sim = Simulator()

    def bad(sim):
        yield 123

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1000)

    sim.spawn(proc(sim))
    sim.run(until=400)
    assert sim.now == 400
    sim.run()
    assert sim.now == 1000


def test_run_until_beyond_queue_sets_clock():
    sim = Simulator()
    sim.run(until=5000)
    assert sim.now == 5000


def test_all_of_collects_values():
    sim = Simulator()

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim):
        procs = [sim.spawn(child(sim, d, v)) for d, v in [(30, "x"), (10, "y")]]
        values = yield AllOf(sim, procs)
        return values

    assert sim.run_process(parent(sim)) == ["x", "y"]
    assert sim.now == 30


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def parent(sim):
        values = yield AllOf(sim, [])
        return values

    assert sim.run_process(parent(sim)) == []


def test_any_of_returns_first():
    sim = Simulator()

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim):
        procs = [sim.spawn(child(sim, d, v)) for d, v in [(30, "slow"), (10, "fast")]]
        index, value = yield AnyOf(sim, procs)
        return index, value

    index, value = sim.run_process(parent(sim))
    assert (index, value) == (1, "fast")
    # The slow child still drains afterwards; the clock ends at its finish.
    assert sim.now == 30


def test_nested_processes_share_clock():
    sim = Simulator()

    def inner(sim):
        yield sim.timeout(10)
        return sim.now

    def outer(sim):
        yield sim.timeout(5)
        inner_done = yield sim.spawn(inner(sim))
        return inner_done, sim.now

    assert sim.run_process(outer(sim)) == (15, 15)


def test_immediate_event_resumes_without_time_passing():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")

    def proc(sim):
        value = yield gate
        return value, sim.now

    assert sim.run_process(proc(sim)) == ("early", 0)


# -- deterministic ordering under timestamp ties ---------------------------


def _tie_workload():
    """Many processes landing on the same timestamps from mixed paths.

    Zero timeouts, equal timeouts, and pre-fired events all collide on
    the same simulated instants; the firing order must be exactly the
    scheduling order (the heap breaks ties on a monotone sequence
    number, never on callback identity).
    """
    sim = Simulator()
    order = []

    def sleeper(sim, tag, delay):
        yield sim.timeout(delay)
        order.append(tag)

    def stepper(sim, tag):
        yield sim.timeout(0)
        order.append((tag, 0))
        yield sim.timeout(10)
        order.append((tag, 10))

    gate = sim.event()
    gate.succeed(None)

    def waiter(sim, tag):
        yield gate
        order.append(tag)

    for tag in ("s1", "s2"):
        sim.spawn(stepper(sim, tag))
    sim.spawn(sleeper(sim, "a", 10))
    sim.spawn(waiter(sim, "w1"))
    sim.spawn(sleeper(sim, "b", 10))
    sim.spawn(waiter(sim, "w2"))
    sim.spawn(sleeper(sim, "c", 0))
    sim.run()
    return order


def test_timestamp_ties_fire_in_schedule_order():
    order = _tie_workload()
    # Pre-fired gates resume their waiters during the spawn pass itself
    # (no heap round trip), then the t=0 timeout ties fire in schedule
    # order, then the t=10 ties — again in the order the resumes were
    # put on the heap (a/b enqueued at first resume, s1/s2 only when
    # their t=0 step ran).
    assert order == ["w1", "w2", ("s1", 0), ("s2", 0), "c", "a", "b",
                     ("s1", 10), ("s2", 10)]


def test_tie_order_is_reproducible():
    assert _tie_workload() == _tie_workload()


def test_tie_order_identical_with_profiler_enabled():
    # The profiled dispatch path (Event._fire_profiled) must preserve
    # callback order exactly — observation never perturbs ordering.
    from repro.perf import profiling

    plain = _tie_workload()
    with profiling() as prof:
        profiled = _tie_workload()
    assert profiled == plain
    assert prof.events_dispatched > 0
