"""Tests for key distributions and the YCSB workload generator."""

import pytest
from collections import Counter

from repro.errors import InvalidArgument
from repro.sim import RandomStreams
from repro.workloads import (
    LatestGenerator,
    OpType,
    UniformGenerator,
    YcsbWorkload,
    ZipfianGenerator,
)


def rng(name="w"):
    return RandomStreams(11).stream(name)


def test_uniform_covers_range():
    gen = UniformGenerator(100, rng())
    keys = {gen.next_key() for _ in range(5000)}
    assert min(keys) >= 0 and max(keys) < 100
    assert len(keys) == 100


def test_uniform_grow():
    gen = UniformGenerator(10, rng())
    gen.grow(20)
    assert gen.item_count == 20
    with pytest.raises(InvalidArgument):
        gen.grow(5)


def test_zipfian_keys_in_range():
    gen = ZipfianGenerator(1000, rng(), theta=0.7)
    for _ in range(2000):
        assert 0 <= gen.next_key() < 1000


def test_zipfian_is_skewed():
    gen = ZipfianGenerator(10_000, rng(), theta=0.99, scrambled=False)
    counts = Counter(gen.next_key() for _ in range(20_000))
    top_share = sum(count for key, count in counts.items()
                    if key < 100) / 20_000
    assert top_share > 0.4  # the hottest 1% of ranks dominate


def test_zipfian_lower_theta_is_less_skewed():
    def top_share(theta):
        gen = ZipfianGenerator(10_000, rng(f"t{theta}"), theta=theta,
                               scrambled=False)
        counts = Counter(gen.next_key() for _ in range(20_000))
        return sum(c for k, c in counts.items() if k < 100) / 20_000

    assert top_share(0.5) < top_share(0.95)


def test_zipfian_scrambles_hot_keys_across_space():
    gen = ZipfianGenerator(10_000, rng(), theta=0.99, scrambled=True)
    counts = Counter(gen.next_key() for _ in range(20_000))
    hottest = counts.most_common(5)
    assert max(key for key, _count in hottest) > 1000


def test_zipfian_grow_incremental_matches_full_recompute():
    a = ZipfianGenerator(1000, rng("a"), theta=0.7)
    a.grow(1500)
    b = ZipfianGenerator(1500, rng("b"), theta=0.7)
    assert a._zetan == pytest.approx(b._zetan, rel=1e-9)
    assert a._eta == pytest.approx(b._eta, rel=1e-9)


def test_zipfian_validation():
    with pytest.raises(InvalidArgument):
        ZipfianGenerator(0, rng())
    with pytest.raises(InvalidArgument):
        ZipfianGenerator(10, rng(), theta=1.5)


def test_latest_prefers_recent_keys():
    gen = LatestGenerator(1000, rng(), theta=0.99)
    keys = [gen.next_key() for _ in range(5000)]
    assert sum(1 for key in keys if key > 900) / len(keys) > 0.4


def test_ycsb_paper_mix_fractions():
    workload = YcsbWorkload(10_000, rng(), mix="paper", theta=0.7)
    for _ in range(20_000):
        workload.next_operation()
    total = sum(workload.counts.values())
    assert workload.counts[OpType.READ] / total == pytest.approx(0.4,
                                                                 abs=0.02)
    assert workload.counts[OpType.UPDATE] / total == pytest.approx(0.4,
                                                                   abs=0.02)
    assert workload.counts[OpType.INSERT] / total == pytest.approx(0.2,
                                                                   abs=0.02)


def test_ycsb_inserts_extend_keyspace():
    workload = YcsbWorkload(100, rng(), mix="paper")
    inserted = [op.key for op in workload.operations(1000)
                if op.op is OpType.INSERT]
    assert inserted == list(range(100, 100 + len(inserted)))
    assert workload.keys.item_count == 100 + len(inserted)


def test_ycsb_deterministic_given_seed():
    a = YcsbWorkload(1000, RandomStreams(3).stream("x"), mix="a")
    b = YcsbWorkload(1000, RandomStreams(3).stream("x"), mix="a")
    ops_a = [(op.op, op.key) for op in a.operations(200)]
    ops_b = [(op.op, op.key) for op in b.operations(200)]
    assert ops_a == ops_b


def test_ycsb_scan_mix():
    workload = YcsbWorkload(1000, rng(), mix="e", scan_length=10)
    ops = list(workload.operations(500))
    scans = [op for op in ops if op.op is OpType.SCAN]
    assert scans
    assert all(op.scan_length == 10 for op in scans)


def test_ycsb_validation():
    with pytest.raises(InvalidArgument):
        YcsbWorkload(100, rng(), mix="zzz")
    with pytest.raises(InvalidArgument):
        YcsbWorkload(0, rng())
    with pytest.raises(InvalidArgument):
        YcsbWorkload(100, rng(), distribution="gaussian")
