"""Tests for the self-profiler, bench-result schema, and regression gate.

Covers the three contracts ``repro.perf`` makes:

* off by default and free when off (the NULL profiler is the process
  default; enabling one never perturbs simulation results);
* honest attribution (self <= cumulative, collapsed stacks account for
  exactly the recorded self time, sites map to the right subsystem);
* a validated ``BENCH_*.json`` schema that the committed baselines obey
  and that ``scripts/check_bench_regression.py`` gates CI with.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.bench import fig3c_latency
from repro.perf import (
    NULL_PROFILER,
    BenchResult,
    Profiler,
    collapsed_stacks,
    get_default_profiler,
    profiling,
    render_profile,
    set_default_profiler,
    subsystem_totals,
    validate_bench_json,
)
from repro.perf.profiler import _site_from_code
from repro.sim import Simulator

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(REPO, "benchmarks", "baselines")

WORKLOAD = {"depths": (2, 4), "operations": 10}


def _run_workload():
    return fig3c_latency(**WORKLOAD)


# -- default state ---------------------------------------------------------


def test_profiler_disabled_by_default():
    assert get_default_profiler() is NULL_PROFILER
    assert not NULL_PROFILER.enabled


def test_profiling_context_installs_and_restores():
    before = get_default_profiler()
    with profiling() as prof:
        assert prof.enabled
        assert get_default_profiler() is prof
    assert get_default_profiler() is before


def test_set_default_profiler_returns_previous():
    mine = Profiler()
    previous = set_default_profiler(mine)
    try:
        assert get_default_profiler() is mine
    finally:
        set_default_profiler(previous)
    assert get_default_profiler() is previous


# -- no-perturbation contract ----------------------------------------------


def test_profiled_run_results_identical():
    plain = _run_workload()
    with profiling() as prof:
        profiled = _run_workload()
    assert profiled == plain
    assert prof.events_dispatched > 0


def test_profiler_never_touches_simulated_time():
    with profiling():
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(100)
            return sim.now

        assert sim.run_process(proc(sim)) == 100
        assert sim.now == 100


# -- attribution -----------------------------------------------------------


def test_profiler_collects_engine_and_vm_attribution():
    with profiling() as prof:
        _run_workload()
    subsystems = {key[0] for key in prof.sites}
    assert "engine" in subsystems  # dispatch frames
    assert "vm" in subsystems      # program runs
    assert "kernel" in subsystems  # resumed kernel generators
    assert prof.instructions_retired > 0
    assert prof.programs  # (name, mode) -> [runs, insns, wall]
    assert set(prof.opcodes) <= {"alu", "load", "store", "jmp", "imm",
                                 "call", "exit"}
    assert prof.heap_max >= 1
    assert prof.heap_depth_avg() > 0


def test_self_time_never_exceeds_cumulative():
    with profiling() as prof:
        _run_workload()
    for (subsystem, site), (calls, self_ns, cum_ns) in prof.sites.items():
        assert calls > 0, site
        assert 0 <= self_ns <= cum_ns, (subsystem, site)


def test_collapsed_stacks_account_for_all_self_time():
    with profiling() as prof:
        _run_workload()
    # Every stack's accumulated self-ns is exactly the site self-ns total.
    assert sum(prof.stacks.values()) == \
        sum(stat[1] for stat in prof.sites.values())


def test_subsystem_totals_self_sums_to_total():
    with profiling() as prof:
        _run_workload()
    totals = subsystem_totals(prof)
    assert sum(row["self_ns"] for row in totals.values()) == prof.total_ns
    for row in totals.values():
        assert row["self_ns"] <= row["cum_ns"]


def test_site_subsystem_mapping():
    from repro.ebpf import vm as vm_mod
    from repro.sim import engine as engine_mod

    subsystem, site = _site_from_code(engine_mod.Simulator.step.__code__)
    assert subsystem == "engine"
    assert site.startswith("engine.") and site.endswith("step")
    subsystem, site = _site_from_code(vm_mod.Vm.run.__code__)
    assert subsystem == "vm"
    assert site.startswith("vm.") and site.endswith("run")


def test_collapsed_stacks_format():
    with profiling() as prof:
        _run_workload()
    text = collapsed_stacks(prof)
    lines = text.strip().splitlines()
    assert lines
    for line in lines:
        stack, _, self_ns = line.rpartition(" ")
        assert int(self_ns) >= 0
        for frame in stack.split(";"):
            subsystem, _, site = frame.partition(":")
            assert subsystem and site, line
    # Deterministic ordering: sorted by stack string.
    assert lines == sorted(lines)


def test_render_profile_mentions_subsystems():
    with profiling() as prof:
        _run_workload()
    text = render_profile(prof)
    assert "engine" in text
    assert "vm" in text
    assert "events dispatched" in text


# -- BenchResult schema ----------------------------------------------------


def test_bench_result_round_trips_schema():
    result = BenchResult(
        name="demo", title="Demo", mode="smoke",
        wall_rounds_s=[0.5, 0.4, 0.6],
        sim_time_ns=12345,
        throughput={"value": 10.0, "unit": "kiops"},
        metrics={"speedup": 1.5},
    )
    data = json.loads(result.to_json())
    assert validate_bench_json(data) == []
    assert data["rounds"] == 3
    assert data["wall_s"]["min"] == 0.4
    assert data["fingerprint"]["python"]


def test_bench_result_rejects_bad_inputs():
    with pytest.raises(ValueError):
        BenchResult("x", "X", "fast", [0.1])  # bad mode
    with pytest.raises(ValueError):
        BenchResult("x", "X", "full", [])  # no rounds
    with pytest.raises(ValueError):
        BenchResult("x", "X", "full", [0.1],
                    throughput={"value": 1.0})  # missing unit


def test_validate_flags_malformed_documents():
    assert validate_bench_json([]) != []
    assert validate_bench_json({"schema": "other/9"}) != []
    good = json.loads(BenchResult("x", "X", "smoke", [0.1]).to_json())
    assert validate_bench_json(good) == []
    bad = dict(good)
    bad["wall_s"] = {"mean": 0.1}  # missing min/max/per_round
    assert any("wall_s" in p for p in validate_bench_json(bad))
    bad = dict(good)
    bad["throughput"] = {"value": 1.0}
    assert any("throughput" in p for p in validate_bench_json(bad))


def test_committed_baselines_are_valid():
    names = sorted(f for f in os.listdir(BASELINE_DIR)
                   if f.startswith("BENCH_") and f.endswith(".json"))
    assert len(names) >= 19, "baseline set incomplete"
    for fname in names:
        with open(os.path.join(BASELINE_DIR, fname)) as fh:
            data = json.load(fh)
        assert validate_bench_json(data) == [], fname
        assert fname == f"BENCH_{data['name']}.json"
        assert data["mode"] == "smoke", fname


# -- regression checker ----------------------------------------------------


def _load_checker():
    path = os.path.join(REPO, "scripts", "check_bench_regression.py")
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_result(directory, name, wall_s, sim_time_ns=1000):
    result = BenchResult(name=name, title=name.title(), mode="smoke",
                         wall_rounds_s=[wall_s],
                         sim_time_ns=sim_time_ns)
    result.write(os.path.join(directory, f"BENCH_{name}.json"))


@pytest.fixture
def checker_dirs(tmp_path):
    base = tmp_path / "baselines"
    fresh = tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    return _load_checker(), str(base), str(fresh)


def test_checker_passes_within_tolerance(checker_dirs, capsys):
    checker, base, fresh = checker_dirs
    _write_result(base, "demo", 1.0)
    _write_result(fresh, "demo", 1.1)
    assert checker.main(["--fresh", fresh, "--baselines", base,
                         "--tolerance", "0.25"]) == 0
    assert "within 25%" in capsys.readouterr().out


def test_checker_fails_on_injected_2x_slowdown(checker_dirs, capsys):
    checker, base, fresh = checker_dirs
    _write_result(base, "demo", 1.0)
    _write_result(fresh, "demo", 2.0)
    assert checker.main(["--fresh", fresh, "--baselines", base,
                         "--tolerance", "0.25"]) == 1
    assert "regression" in capsys.readouterr().err


def test_checker_warns_on_sim_time_drift_strict_fails(checker_dirs, capsys):
    checker, base, fresh = checker_dirs
    _write_result(base, "demo", 1.0, sim_time_ns=1000)
    _write_result(fresh, "demo", 1.0, sim_time_ns=2000)
    assert checker.main(["--fresh", fresh, "--baselines", base]) == 0
    assert "drift" in capsys.readouterr().err
    assert checker.main(["--fresh", fresh, "--baselines", base,
                         "--strict"]) == 1


def test_checker_rejects_corrupt_baseline(checker_dirs, capsys):
    checker, base, fresh = checker_dirs
    with open(os.path.join(base, "BENCH_demo.json"), "w") as fh:
        fh.write('{"schema": "nope"}')
    _write_result(fresh, "demo", 1.0)
    assert checker.main(["--fresh", fresh, "--baselines", base]) == 2
    assert "schema error" in capsys.readouterr().err


def test_checker_requires_fresh_result_per_baseline(checker_dirs, capsys):
    checker, base, fresh = checker_dirs
    _write_result(base, "demo", 1.0)
    assert checker.main(["--fresh", fresh, "--baselines", base]) == 2
    assert "no fresh result" in capsys.readouterr().err


# -- shared bench harness --------------------------------------------------


def _load_harness():
    sys.path.insert(0, os.path.join(REPO, "benchmarks"))
    try:
        import harness
    finally:
        sys.path.pop(0)
    return harness


def test_run_spec_produces_valid_bench_result():
    harness = _load_harness()
    spec = harness.BenchSpec(
        name="unit_demo", title="Unit demo",
        func=lambda scale=2: [{"x": scale}],
        columns=["x"],
        full={"scale": 4}, smoke={"scale": 2},
        metric_cols=["x"],
    )
    rows, result = harness.run_spec(spec, mode="smoke", rounds=2)
    assert rows == [{"x": 2}]
    data = json.loads(result.to_json())
    assert validate_bench_json(data) == []
    assert data["mode"] == "smoke"
    assert data["rounds"] == 2
    assert data["metrics"]["x_mean"] == 2


def test_run_spec_detects_nondeterminism():
    harness = _load_harness()
    ticker = iter(range(100))

    def flappy():
        return [{"x": next(ticker)}]

    spec = harness.BenchSpec(name="flappy", title="Flappy", func=flappy,
                             columns=["x"], full={}, smoke={})
    with pytest.raises(AssertionError):
        harness.run_spec(spec, mode="full", rounds=2)


def test_every_bench_module_exports_a_spec():
    harness = _load_harness()
    specs = harness.discover_specs(None)
    names = {spec.name for spec in specs}
    assert len(specs) >= 19
    assert {"fig3b_nvme_hook", "lsm_get", "obs_overhead",
            "net_pushdown", "crash_recovery"} <= names
