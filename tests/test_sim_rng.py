"""Unit tests for deterministic random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=7).stream("device")
    b = RandomStreams(seed=7).stream("device")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_decorrelated():
    streams = RandomStreams(seed=7)
    a = [streams.stream("device").random() for _ in range(5)]
    b = [streams.stream("workload").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random()
    b = RandomStreams(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("s") is streams.stream("s")


def test_fork_is_deterministic_and_independent():
    parent = RandomStreams(seed=3)
    fork_a = parent.fork("thread-0")
    fork_b = parent.fork("thread-1")
    again = RandomStreams(seed=3).fork("thread-0")
    assert fork_a.stream("w").random() == again.stream("w").random()
    assert fork_a.seed != fork_b.seed
