"""Tests for ``repro.compact`` — in-kernel LSM compaction offload.

Covers the merge sink and helpers, the BPF merge program, the
CompactionEngine's user/offloaded equivalence and boundary-byte
accounting, QoS attribution, the COMPACT wire codecs, the remote
(one-RPC) path, and graceful degradation of concurrent chain gets
across the compaction's extent unlinks.
"""

import pytest

from repro.bench.runner import NVM2_BENCH
from repro.compact import CompactionEngine, MergeSink, sstable_merge_program
from repro.core import Hook, StorageBpf
from repro.core.library import index_traversal_program
from repro.errors import InvalidArgument
from repro.kernel import Kernel, KernelConfig
from repro.net import (
    Connection,
    NetConfig,
    NetworkFabric,
    RemoteClient,
    StorageTarget,
)
from repro.net import wire
from repro.obs import MetricsRegistry
from repro.sim import Simulator
from repro.structures import FsBackend, LsmTree, SsTable
from repro.structures.lsm import TOMBSTONE


def make_machine(seed=3, cores=4):
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(cores=cores, seed=seed))
    return sim, kernel, StorageBpf(kernel)


def seed_tree(fs, runs=3, keys_per_run=120, tombstones_per_run=10):
    tree = LsmTree(fs, "/db", memtable_limit=4 * keys_per_run,
                   l0_limit=runs + 4)
    half = keys_per_run // 2
    for run in range(runs):
        base = run * half
        for index in range(keys_per_run):
            tree.put(base + index, run * 10_000 + index)
        for index in range(tombstones_per_run):
            tree.delete(base + index * 3)
        tree.flush()
    return tree


def run_compaction(mode, **kwargs):
    sim, kernel, bpf = make_machine()
    tree = seed_tree(kernel.fs, **kwargs)
    engine = CompactionEngine(bpf)
    proc = engine.spawn()
    out = {}

    def driver():
        out["report"] = yield from engine.compact_tree(proc, tree, 0,
                                                       mode=mode)

    kernel.run_syscall(driver())
    return tree, out["report"]


# ---------------------------------------------------------------------------
# MergeSink and the merge program
# ---------------------------------------------------------------------------


def test_merge_sink_upserts_and_drops():
    sink = MergeSink()
    assert sink.emit(5, 50) == 1
    assert sink.emit(5, 51) == 2  # newer run overwrites
    assert sink.emit(1, 10) == 3
    assert sink.drop(5) == 1
    assert sink.items() == [(1, 10)]
    assert (sink.emitted, sink.dropped) == (3, 1)


def test_merge_program_verifies():
    _sim, _kernel, bpf = make_machine()
    program = sstable_merge_program()
    bpf.verify_program(program)  # raises on rejection


def test_helpers_are_noops_without_a_sink():
    # A merge chain read without an attached sink must not crash: the
    # helpers return 0 (the same fail-closed contract as trace_offset).
    sim, kernel, bpf = make_machine()
    tree = seed_tree(kernel.fs, runs=1)
    path = tree.levels[0][0][0]
    program = sstable_merge_program()

    def driver():
        handle = yield from bpf.open_chain(
            proc, path, program, hook=Hook.NVME, block_size=4096,
            scratch_size=64, args=(0,))
        result = yield from handle.read_robust(4096)
        yield from handle.close()
        return result

    proc = kernel.spawn_process("nosink")
    result = kernel.run_syscall(driver())
    assert result.ok
    assert result.value == 0  # nothing emitted anywhere


# ---------------------------------------------------------------------------
# Engine: user vs offloaded equivalence and accounting
# ---------------------------------------------------------------------------


def test_user_and_offloaded_produce_identical_tables():
    user_tree, user_report = run_compaction("user")
    off_tree, off_report = run_compaction("offloaded")
    user_items = list(user_tree.levels[1][0][1].entries())
    off_items = list(off_tree.levels[1][0][1].entries())
    assert user_items == off_items
    assert user_report.output_bytes == off_report.output_bytes
    assert user_report.output_entries == off_report.output_entries
    assert user_report.dropped == off_report.dropped


def test_offloaded_moves_5x_fewer_boundary_bytes():
    _user_tree, user_report = run_compaction("user")
    _off_tree, off_report = run_compaction("offloaded")
    assert user_report.user_bytes >= 5 * off_report.user_bytes
    # The offloaded rewrite still moves the image — below the boundary.
    assert off_report.kernel_bytes == off_report.output_bytes
    assert off_report.chain_hops > 0


def test_bottom_level_compaction_drops_tombstones():
    tree, report = run_compaction("offloaded")
    assert report.dropped > 0
    merged = list(tree.levels[1][0][1].entries())
    assert all(value != TOMBSTONE for _key, value in merged)
    for key in range(0, 30, 3):  # run-0 tombstones not resurrected
        assert tree.get(key) is None


def test_compaction_unlinks_inputs_and_serves_reads():
    tree, report = run_compaction("offloaded")
    assert tree.compactions == 1
    assert tree.tables_deleted == report.tables
    assert len(tree.levels[0]) == 0
    half = 120 // 2
    for key in range(0, 2 * half + 120, 7):
        expected = tree.get(key)  # must not raise on unlinked tables
        if expected is not None:
            assert isinstance(expected, int)


def test_unknown_mode_rejected():
    sim, kernel, bpf = make_machine()
    engine = CompactionEngine(bpf)
    proc = engine.spawn()
    with pytest.raises(InvalidArgument):
        kernel.run_syscall(engine.compact_files(proc, [], "/db/x",
                                                mode="quantum"))


def test_engine_metrics_counters():
    sim, kernel, bpf = make_machine()
    tree = seed_tree(kernel.fs)
    registry = MetricsRegistry()
    engine = CompactionEngine(bpf, metrics=registry)
    proc = engine.spawn()
    kernel.run_syscall(engine.compact_tree(proc, tree, 0,
                                           mode="offloaded"))
    runs = registry.counter("compact_runs_total", "")
    assert runs.value(mode="offloaded") == 1
    boundary = registry.counter("compact_boundary_bytes_total", "")
    assert boundary.value(boundary="syscall", mode="offloaded") > 0
    assert boundary.value(boundary="kernel", mode="offloaded") > 0
    assert (boundary.value(boundary="syscall", mode="offloaded")
            < boundary.value(boundary="kernel", mode="offloaded"))


# ---------------------------------------------------------------------------
# QoS attribution (system by default, opt-in tenant)
# ---------------------------------------------------------------------------


def test_compaction_is_system_traffic_by_default():
    _sim, _kernel, bpf = make_machine()
    assert CompactionEngine(bpf).spawn().tenant is None
    assert CompactionEngine(bpf, tenant="").spawn().tenant is None


def test_compaction_tenant_attribution_opt_in():
    _sim, _kernel, bpf = make_machine()
    proc = CompactionEngine(bpf, tenant="analytics").spawn()
    assert proc.tenant is not None
    assert proc.tenant.name == "analytics"


# ---------------------------------------------------------------------------
# Wire codecs
# ---------------------------------------------------------------------------


def test_wire_compact_roundtrip():
    body = wire.encode_compact("/db/out", True, ["/db/a", "/db/b"])
    output_path, drop, inputs = wire.decode_compact(body)
    assert output_path == "/db/out"
    assert drop is True
    assert inputs == ["/db/a", "/db/b"]


def test_wire_compact_reply_roundtrip():
    body = wire.encode_compact_reply(10, 2, 8, 4096, 6)
    assert wire.decode_compact_reply(body) == (10, 2, 8, 4096, 6)


def test_wire_compact_op_named():
    assert wire.OP_NAMES[wire.OP_COMPACT] == "compact"


# ---------------------------------------------------------------------------
# Remote (one-RPC) compaction
# ---------------------------------------------------------------------------


def test_remote_compact_matches_local_offloaded():
    _off_tree, off_report = run_compaction("offloaded")

    sim = Simulator()
    target = StorageTarget(sim, model=NVM2_BENCH,
                           config=KernelConfig(cores=4, seed=3))
    tree = seed_tree(target.kernel.fs)
    fabric = NetworkFabric(sim, NetConfig(one_way_ns=5_000, seed=3))
    connection = Connection(fabric, "compactor")
    target.attach(connection)
    client = RemoteClient(connection)
    plan = tree.plan_compaction(0)
    output_path = tree.reserve_table_path()
    out = {}

    def driver():
        out["result"] = yield from client.compact(
            output_path, plan.input_paths(),
            drop_tombstones=plan.drop_tombstones)

    sim.run_process(driver())
    result = out["result"]
    assert result.emitted == off_report.emitted
    assert result.dropped == off_report.dropped
    assert result.output_entries == off_report.output_entries
    assert result.output_bytes == off_report.output_bytes
    # The whole compaction crossed the network in well under a page.
    assert result.net_bytes < 4096
    assert target.executed["compact"] == 1

    # The client installs the output without re-reading it.
    inode = target.kernel.fs.lookup(output_path)
    table = SsTable(FsBackend(target.kernel.fs, inode))
    tree.apply_compaction(plan, [], output=(output_path, table))
    merged = list(tree.levels[1][0][1].entries())
    assert len(merged) == result.output_entries


# ---------------------------------------------------------------------------
# Concurrent gets degrade gracefully across the unlinks
# ---------------------------------------------------------------------------


def test_concurrent_chain_get_fails_closed_after_compaction():
    sim, kernel, bpf = make_machine()
    tree = seed_tree(kernel.fs)
    path, table = tree.levels[0][0]
    program = index_traversal_program()
    proc = kernel.spawn_process("reader")

    def install():
        fd = yield from kernel.sys_open(proc, path)
        yield from bpf.install(proc, fd, program)
        return fd

    fd = kernel.run_syscall(install())

    engine = CompactionEngine(bpf)
    compactor = engine.spawn()
    # User-mode merge: the compactor opens no chains of its own on the
    # input inodes, so the reader's snapshot stays installed until the
    # unlink fires the unmap hook — the §4 invalidation path.
    kernel.run_syscall(engine.compact_tree(compactor, tree, 0,
                                           mode="user"))
    # The unlink's unmap event invalidated the reader's snapshot.
    assert bpf.cache.invalidations >= 1

    def read_stale():
        result = yield from bpf.read_chain(
            proc, fd, table.root_index_offset, 4096, args=(3,))
        return result

    # Fail closed, never stale: the freed extents reject the submission
    # outright (and had any block survived mapped, the invalidated
    # snapshot would abort the chain with EEXTENT mid-flight).
    with pytest.raises(InvalidArgument):
        kernel.run_syscall(read_stale())
