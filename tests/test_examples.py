"""Every script under ``examples/`` must actually run.

The examples double as documentation; a stale import or API drift in
one of them is a user-facing bug even when the library tests pass.
Each script is executed in-process with :func:`runpy.run_path` under
``__name__ == "__main__"``, exactly as ``python examples/<name>.py``
would, with stdout captured so a run stays quiet unless it fails.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(path):
    captured = io.StringIO()
    with redirect_stdout(captured):
        namespace = runpy.run_path(str(path), run_name="__main__")
    # Each example prints a report and documents itself.
    assert captured.getvalue().strip(), f"{path.name} printed nothing"
    assert namespace.get("__doc__"), f"{path.name} has no docstring"
