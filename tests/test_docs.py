"""Documentation guards: the README's code must actually run, and the
documented repo structure must exist."""

import re
from pathlib import Path

REPO = Path(__file__).parent.parent


def test_readme_quickstart_snippet_executes():
    readme = (REPO / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
    assert blocks, "README lost its quickstart snippet"
    namespace = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    result = namespace["result"]
    assert result.value == 12340


def test_documented_benchmarks_exist():
    design = (REPO / "DESIGN.md").read_text()
    for match in re.finditer(r"`benchmarks/(bench_\w+\.py)`", design):
        assert (REPO / "benchmarks" / match.group(1)).exists(), \
            match.group(1)


def test_every_benchmark_is_indexed_in_design():
    design = (REPO / "DESIGN.md").read_text()
    for path in (REPO / "benchmarks").glob("bench_*.py"):
        assert path.name in design, f"{path.name} missing from DESIGN.md"


def test_examples_documented_in_readme_exist():
    for path in (REPO / "examples").glob("*.py"):
        assert path.stat().st_size > 0
    names = {path.name for path in (REPO / "examples").glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 5


def test_experiments_doc_mentions_every_figure():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for item in ("Figure 1", "Table 1", "Figure 3a", "Figure 3b",
                 "Figure 3c", "Figure 3d", "extent stability"):
        assert item.lower() in experiments.lower(), item


def test_all_public_modules_have_docstrings():
    import importlib
    import pkgutil

    import repro

    missing = []
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        module = importlib.import_module(module_info.name)
        if not (module.__doc__ or "").strip():
            missing.append(module_info.name)
    assert not missing, f"modules without docstrings: {missing}"
