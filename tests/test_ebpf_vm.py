"""VM semantics tests, run in all three tiers: interp, jit, and block."""

import pytest

from repro.errors import VmFault
from repro.ebpf import (
    ArrayMap,
    CtxField,
    CtxLayout,
    FieldKind,
    HashMap,
    Program,
    Vm,
    assemble,
    base_registry,
    verify,
)
from repro.ebpf.vm import VmEnvironment

HELPERS = base_registry()
NAMES = HELPERS.names()

LAYOUT = CtxLayout(
    [
        CtxField("a", 0, 8),
        CtxField("b", 8, 8),
        CtxField("out", 16, 8, writable=True),
        CtxField("data", 24, 8, FieldKind.POINTER, region="data",
                 region_size=64),
        CtxField("buf", 32, 8, FieldKind.POINTER, region="buf",
                 region_size=32, writable=True),
    ]
)


def run(source, a=0, b=0, data=None, buf=None, maps=None, mode="interp",
        clock=None):
    prog = Program(assemble(source, NAMES), LAYOUT, name="t")
    verify(prog, HELPERS, maps=maps)
    env = VmEnvironment(HELPERS, maps=maps, clock=clock)
    vm = Vm(prog, env, mode=mode)
    ctx = bytearray(40)
    ctx[0:8] = (a & (2**64 - 1)).to_bytes(8, "little")
    ctx[8:16] = (b & (2**64 - 1)).to_bytes(8, "little")
    regions = {
        "data": data if data is not None else bytearray(64),
        "buf": buf if buf is not None else bytearray(32),
    }
    result = vm.run(ctx, regions)
    out = int.from_bytes(ctx[16:24], "little")
    return result, out, vm


MODES = ["interp", "jit", "block"]


@pytest.mark.parametrize("mode", MODES)
def test_arithmetic(mode):
    src = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov   r4, r2
        add   r4, r3
        mul   r4, 3
        sub   r4, 1
        stxdw [r1+16], r4
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, a=10, b=5, mode=mode)
    assert out == (10 + 5) * 3 - 1


@pytest.mark.parametrize("mode", MODES)
def test_wraparound_64bit(mode):
    src = """
        lddw  r2, 0xffffffffffffffff
        add   r2, 1
        stxdw [r1+16], r2
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, mode=mode)
    assert out == 0


@pytest.mark.parametrize("mode", MODES)
def test_alu32_zero_extends(mode):
    src = """
        lddw  r2, 0xffffffff00000001
        add32 r2, 1
        stxdw [r1+16], r2
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, mode=mode)
    assert out == 2


@pytest.mark.parametrize("mode", MODES)
def test_division_by_zero_yields_zero(mode):
    src = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        div   r2, r3
        stxdw [r1+16], r2
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, a=100, b=0, mode=mode)
    assert out == 0
    _, out, _ = run(src, a=100, b=7, mode=mode)
    assert out == 14


@pytest.mark.parametrize("mode", MODES)
def test_mod_by_zero_keeps_dividend(mode):
    src = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mod   r2, r3
        stxdw [r1+16], r2
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, a=100, b=0, mode=mode)
    assert out == 100


@pytest.mark.parametrize("mode", MODES)
def test_signed_comparison(mode):
    # -1 (unsigned max) is signed-less-than 1.
    src = """
        lddw  r2, 0xffffffffffffffff
        mov   r3, 1
        jslt  r2, r3, neg
        stxdw [r1+16], r3
        mov   r0, 0
        exit
    neg:
        mov   r4, 42
        stxdw [r1+16], r4
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, mode=mode)
    assert out == 42


@pytest.mark.parametrize("mode", MODES)
def test_arsh_sign_extends(mode):
    src = """
        lddw  r2, 0x8000000000000000
        arsh  r2, 63
        stxdw [r1+16], r2
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, mode=mode)
    assert out == 2**64 - 1


@pytest.mark.parametrize("mode", MODES)
def test_byte_loads_little_endian(mode):
    data = bytearray(64)
    data[0:4] = (0x11223344).to_bytes(4, "little")
    src = """
        ldxdw r2, [r1+24]
        ldxw  r3, [r2+0]
        stxdw [r1+16], r3
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, data=data, mode=mode)
    assert out == 0x11223344


@pytest.mark.parametrize("mode", MODES)
def test_store_to_writable_buffer(mode):
    buf = bytearray(32)
    src = """
        ldxdw r2, [r1+32]
        mov   r3, 0xAB
        stxb  [r2+5], r3
        mov   r0, 0
        exit
    """
    run(src, buf=buf, mode=mode)
    assert buf[5] == 0xAB


@pytest.mark.parametrize("mode", MODES)
def test_loop_sums_data(mode):
    data = bytearray(range(64))
    src = """
        ldxdw r2, [r1+24]
        mov   r4, 0
        mov   r5, 0
    loop:
        jge   r4, 64, done
        mov   r6, r2
        add   r6, r4
        ldxb  r7, [r6+0]
        add   r5, r7
        add   r4, 1
        ja    loop
    done:
        stxdw [r1+16], r5
        mov   r0, 0
        exit
    """
    result, out, _ = run(src, data=data, mode=mode)
    assert out == sum(range(64))
    assert result.instructions > 64 * 6


@pytest.mark.parametrize("mode", MODES)
def test_helper_trace(mode):
    src = """
        mov  r1, 123
        call trace
        mov  r0, 0
        exit
    """
    result, _, _ = run(src, mode=mode)
    assert result.trace_log == [123]
    assert result.helper_calls == 1


@pytest.mark.parametrize("mode", MODES)
def test_ktime_uses_env_clock(mode):
    src = """
        call  ktime
        stxdw [r1+16], r0
        mov   r0, 0
        exit
    """
    # r1 is clobbered by the call: program must save it first.
    src = """
        mov   r6, r1
        call  ktime
        stxdw [r6+16], r0
        mov   r0, 0
        exit
    """
    _, out, _ = run(src, mode=mode, clock=lambda: 987654)
    assert out == 987654


@pytest.mark.parametrize("mode", MODES)
def test_map_lookup_hit_and_miss(mode):
    m = HashMap(4, 8, 16, name="m")
    m.update((1).to_bytes(4, "little"), (555).to_bytes(8, "little"))
    src = """
        mov   r6, r1
        ldxdw r7, [r1+0]
        stxw  [r10-4], r7
        mov   r1, 1
        mov   r2, r10
        add   r2, -4
        call  map_lookup
        jeq   r0, 0, miss
        ldxdw r2, [r0+0]
        stxdw [r6+16], r2
        mov   r0, 0
        exit
    miss:
        mov   r2, 0
        stxdw [r6+16], r2
        mov   r0, 1
        exit
    """
    result, out, _ = run(src, a=1, maps={1: m}, mode=mode)
    assert (result.return_value, out) == (0, 555)
    result, out, _ = run(src, a=2, maps={1: m}, mode=mode)
    assert (result.return_value, out) == (1, 0)


@pytest.mark.parametrize("mode", MODES)
def test_map_update_from_program(mode):
    m = ArrayMap(value_size=8, max_entries=4, name="arr")
    src = """
        stw   [r10-4], 2
        mov   r2, 777
        stxdw [r10-16], r2
        mov   r1, 1
        mov   r2, r10
        add   r2, -4
        mov   r3, r10
        add   r3, -16
        call  map_update
        exit
    """
    result, _, _ = run(src, maps={1: m}, mode=mode)
    assert result.return_value == 0
    assert int.from_bytes(m.lookup_index(2), "little") == 777


@pytest.mark.parametrize("mode", MODES)
def test_memcpy_between_regions(mode):
    data = bytearray(64)
    data[0:8] = b"ABCDEFGH"
    buf = bytearray(32)
    src = """
        ldxdw r3, [r1+24]
        ldxdw r5, [r1+32]
        mov   r1, r5
        mov   r2, 8
        mov   r4, 8
        call  memcpy
        mov   r0, 0
        exit
    """
    run(src, data=data, buf=buf, mode=mode)
    assert bytes(buf[0:8]) == b"ABCDEFGH"


def test_unverified_program_refused():
    prog = Program(assemble("mov r0, 0\nexit"), LAYOUT)
    with pytest.raises(VmFault, match="not accepted"):
        Vm(prog, VmEnvironment(HELPERS))


def test_runtime_bounds_check_is_defence_in_depth():
    # Bypass the verifier deliberately; the VM must still fault on OOB.
    prog = Program(
        assemble("ldxdw r2, [r1+24]\nldxb r3, [r2+64]\nmov r0, 0\nexit"),
        LAYOUT,
    )
    prog.verified = True  # forged
    vm = Vm(prog, VmEnvironment(HELPERS))
    ctx = bytearray(40)
    with pytest.raises(VmFault, match="out of bounds"):
        vm.run(ctx, {"data": bytearray(64), "buf": bytearray(32)})


def test_runtime_instruction_budget():
    prog = Program(assemble("loop:\nja loop"), LAYOUT)
    prog.verified = True  # forged
    vm = Vm(prog, VmEnvironment(HELPERS), max_instructions=1000)
    with pytest.raises(VmFault, match="budget"):
        vm.run(bytearray(40), {"data": bytearray(64), "buf": bytearray(32)})


def test_missing_region_faults():
    prog = Program(assemble("ldxdw r2, [r1+24]\nmov r0, 0\nexit"), LAYOUT)
    verify(prog, HELPERS)
    vm = Vm(prog, VmEnvironment(HELPERS))
    with pytest.raises(VmFault, match="missing region"):
        vm.run(bytearray(40), {"buf": bytearray(32)})


def test_wrong_region_size_faults():
    prog = Program(assemble("mov r0, 0\nexit"), LAYOUT)
    verify(prog, HELPERS)
    vm = Vm(prog, VmEnvironment(HELPERS))
    with pytest.raises(VmFault, match="layout declares"):
        vm.run(bytearray(40), {"data": bytearray(63), "buf": bytearray(32)})


@pytest.mark.parametrize("mode", MODES)
def test_interp_and_jit_agree_on_instruction_counts(mode):
    src = """
        mov r2, 0
        mov r3, 0
    loop:
        jge r2, 10, done
        add r3, r2
        add r2, 1
        ja  loop
    done:
        stxdw [r1+16], r3
        mov r0, 0
        exit
    """
    result, out, _ = run(src, mode=mode)
    assert out == 45
    assert result.instructions == 2 + 10 * 4 + 1 + 3


@pytest.mark.parametrize("mode", MODES)
def test_partial_read_of_spilled_pointer_faults(mode):
    # Spill the data pointer to the stack, then read a single byte of the
    # slot.  A simulated pointer has no raw bytes; the VM used to hand back
    # 0xff poison for partial reads — every tier must fault instead.  The
    # verifier already rejects such programs, so forge verification to hit
    # the runtime defence in depth.
    prog = Program(
        assemble("""
            ldxdw r2, [r1+24]
            stxdw [r10-8], r2
            ldxb  r3, [r10-8]
            mov   r0, 0
            exit
        """),
        LAYOUT,
    )
    prog.verified = True  # forged
    vm = Vm(prog, VmEnvironment(HELPERS), mode=mode)
    with pytest.raises(VmFault, match="partial read of spilled pointer"):
        vm.run(bytearray(40), {"data": bytearray(64), "buf": bytearray(32)})


@pytest.mark.parametrize("mode", MODES)
def test_full_read_of_spilled_pointer_restores_it(mode):
    # The aligned 8-byte read of the same slot must restore the pointer,
    # usable for a subsequent load.
    src = """
        ldxdw r2, [r1+24]
        stxdw [r10-8], r2
        ldxdw r4, [r10-8]
        ldxb  r5, [r4+3]
        stxdw [r1+16], r5
        mov   r0, 0
        exit
    """
    data = bytearray(64)
    data[3] = 99
    _, out, _ = run(src, data=data, mode=mode)
    assert out == 99


@pytest.mark.parametrize("mode", MODES)
def test_trace_log_is_per_run(mode):
    src = """
        mov  r1, 7
        call trace
        mov  r0, 0
        exit
    """
    prog = Program(assemble(src, NAMES), LAYOUT, name="t")
    verify(prog, HELPERS)
    vm = Vm(prog, VmEnvironment(HELPERS), mode=mode)
    first = vm.run(bytearray(40), {"data": bytearray(64),
                                   "buf": bytearray(32)})
    second = vm.run(bytearray(40), {"data": bytearray(64),
                                    "buf": bytearray(32)})
    # Each run gets a fresh log: no accumulation across invocations.
    assert first.trace_log == [7]
    assert second.trace_log == [7]
    assert first.trace_log is not second.trace_log


def test_vm_trace_log_accessor_is_deprecated():
    src = "mov r1, 5\ncall trace\nmov r0, 0\nexit"
    prog = Program(assemble(src, NAMES), LAYOUT, name="t")
    verify(prog, HELPERS)
    vm = Vm(prog, VmEnvironment(HELPERS))
    vm.run(bytearray(40), {"data": bytearray(64), "buf": bytearray(32)})
    with pytest.warns(DeprecationWarning, match="trace_log is deprecated"):
        legacy = vm.trace_log
    assert legacy == [5]


def test_block_budget_fault_matches_interp_exactly():
    # The block tier hoists the budget check to one test per block; on
    # exhaustion it replays the block per-instruction so the fault carries
    # the same pc, message, and executed count as the interpreter.
    prog = Program(assemble("loop:\nadd r2, 1\nja loop"), LAYOUT)
    prog.verified = True  # forged: infinite loops never verify
    faults = {}
    for mode in ("interp", "block"):
        vm = Vm(prog, VmEnvironment(HELPERS), mode=mode,
                max_instructions=1001)
        with pytest.raises(VmFault) as excinfo:
            vm.run(bytearray(40), {"data": bytearray(64),
                                   "buf": bytearray(32)})
        faults[mode] = (str(excinfo.value), excinfo.value.pc)
    assert faults["interp"] == faults["block"]
