"""repro.net: wire codecs, transport reliability, target ops, pushdown.

Covers the frame envelope and per-op codecs (round trips + hostile
input), plain remote I/O, the BPF-oF acceptance criteria (server-side
re-verification refusing unsafe programs with a typed error; pushdown
beating naive by ~the hop count at high RTT; one EXEC_CHAIN RPC vs
depth READ RPCs), drop recovery with request-id dedup (exactly-once
execution), the bounded in-flight window, and determinism.
"""

import pytest

from repro.bench.runner import NVM2_BENCH, choose_fanout
from repro.core.hooks import storage_ctx_layout
from repro.core.library import index_traversal_program
from repro.ebpf import Program, assemble
from repro.ebpf.isa import encode as encode_instructions
from repro.errors import (
    Errno,
    FramingError,
    InvalidArgument,
    RemoteError,
    RemoteVerifierRejected,
    RpcTimeout,
)
from repro.faults import FaultPlan, FaultSpec
from repro.kernel import KernelConfig
from repro.net import (
    Connection,
    NetConfig,
    NetworkFabric,
    RemoteClient,
    StorageTarget,
    wire,
)
from repro.sim import Simulator
from repro.structures import BTree, FsBackend
from repro.structures.pages import PAGE_SIZE


def build_rig(rtt_us=20, seed=7, plan=None, **conn_kwargs):
    """One client <-> one target over a fresh fabric; returns the parts."""
    sim = Simulator()
    target = StorageTarget(sim, model=NVM2_BENCH,
                           config=KernelConfig(cores=4, seed=seed))
    fabric = NetworkFabric(sim, NetConfig(one_way_ns=rtt_us * 1000 // 2,
                                          seed=seed), plan=plan)
    connection = Connection(fabric, "client", **conn_kwargs)
    target.attach(connection)
    return sim, target, fabric, connection, RemoteClient(connection)


def build_tree(target, depth):
    """A depth-``depth`` B-tree at ``/index``; returns (root, fanout, n)."""
    fanout = choose_fanout(depth)
    num_keys = BTree.keys_for_depth(depth, fanout)
    inode = target.kernel.fs.create("/index")
    items = [(key * 3 + 1, key) for key in range(num_keys)]
    tree = BTree.build(FsBackend(target.kernel.fs, inode), items,
                       fanout=fanout)
    assert tree.depth == depth
    return tree.meta.root_offset, fanout, num_keys


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def test_frame_roundtrip():
    frame = wire.encode_frame(wire.OP_READ, 42, b"body")
    op, status, request_id, body = wire.decode_frame(frame)
    assert (op, status, request_id, body) == (wire.OP_READ, wire.STATUS_OK,
                                              42, b"body")
    reply = wire.encode_frame(wire.OP_READ | wire.REPLY, 42, b"nope",
                              status=wire.status_for_errno("EIO"))
    op, status, request_id, body = wire.decode_frame(reply)
    assert op & wire.REPLY
    assert wire.STATUS_NAMES[status] == "EIO"


def test_frame_rejects_hostile_input():
    good = wire.encode_frame(wire.OP_WRITE, 1, b"x")
    with pytest.raises(FramingError, match="short"):
        wire.decode_frame(good[:10])
    with pytest.raises(FramingError, match="length prefix"):
        wire.decode_frame(good + b"trailing")
    bad_magic = good[:4] + b"\x00\x00" + good[6:]
    with pytest.raises(FramingError, match="magic"):
        wire.decode_frame(bad_magic)
    bad_op = good[:6] + bytes([0x55]) + good[7:]
    with pytest.raises(FramingError, match="unknown op"):
        wire.decode_frame(bad_op)


def test_op_codecs_roundtrip():
    assert wire.decode_read(wire.encode_read("/a", 4096, 512)) == \
        ("/a", 4096, 512)
    assert wire.decode_write(wire.encode_write("/a", 8192, b"hi")) == \
        ("/a", 8192, b"hi")
    assert wire.decode_read_reply(wire.encode_read_reply(b"data")) == b"data"
    assert wire.decode_write_reply(wire.encode_write_reply(7)) == 7

    instructions = assemble("mov r0, 0\nexit")
    body = wire.encode_install_chain("/index", "nvme", 4096, 256, "walk",
                                     instructions)
    path, hook, block, scratch, name, decoded = wire.decode_install_chain(
        body)
    assert (path, hook, block, scratch, name) == ("/index", "nvme", 4096,
                                                  256, "walk")
    assert encode_instructions(decoded) == encode_instructions(instructions)

    assert wire.decode_exec_chain(
        wire.encode_exec_chain(3, 8192, 4096, (10, 20))) == \
        (3, 8192, 4096, (10, 20))


def test_exec_chain_reply_optional_values():
    both = wire.encode_exec_chain_reply("ok", 4, 99, 1, b"page")
    assert wire.decode_exec_chain_reply(both) == ("ok", 4, 99, 1, b"page")
    neither = wire.encode_exec_chain_reply("error", 1, None, None, b"")
    assert wire.decode_exec_chain_reply(neither) == ("error", 1, None,
                                                     None, b"")


def test_truncated_body_is_a_framing_error():
    body = wire.encode_exec_chain(3, 8192, 4096, (10, 20))
    with pytest.raises(FramingError, match="truncated"):
        wire.decode_exec_chain(body[:-3])
    with pytest.raises(FramingError, match="truncated"):
        wire.decode_read(b"\x00\xffway too short")


def test_status_mapping():
    assert wire.status_for_errno("EVERIFY") == 1
    assert wire.STATUS_NAMES[wire.status_for_errno("ETOTALLYMADEUP")] == \
        "EREMOTE"
    wire.raise_for_status(wire.STATUS_OK, "")
    with pytest.raises(RemoteVerifierRejected, match="loops"):
        wire.raise_for_status(1, "program loops")
    with pytest.raises(RemoteError, match="gone"):
        wire.raise_for_status(wire.status_for_errno("ENOENT"), "gone")


# ---------------------------------------------------------------------------
# Plain remote I/O
# ---------------------------------------------------------------------------


def test_remote_write_then_read():
    sim, target, _fabric, connection, client = build_rig()
    target.create_file("/data", bytes(8192))
    payload = bytes(range(256)) * 2

    def workload():
        written = yield from client.write("/data", 512, payload)
        data = yield from client.read("/data", 512, 512)
        return written, data

    start = sim.now
    written, data = sim.run_process(workload())
    assert written == len(payload)
    assert data == payload
    assert target.executed == {"write": 1, "read": 1}
    # Each RPC pays at least one round trip of propagation.
    assert sim.now - start >= 2 * 20_000


def test_remote_errors_are_typed_not_crashes():
    sim, target, _fabric, _connection, client = build_rig()
    target.create_file("/data", bytes(8192))

    def missing():
        yield from client.read("/nope", 0, 512)

    with pytest.raises(RemoteError) as excinfo:
        sim.run_process(missing())
    assert excinfo.value.remote_errno is Errno.ENOENT

    def unaligned():
        yield from client.read("/data", 0, 64)

    with pytest.raises(RemoteError) as excinfo:
        sim.run_process(unaligned())
    assert excinfo.value.remote_errno is Errno.EINVAL
    assert target.refused == {"ENOENT": 1, "EINVAL": 1}

    # The target is still alive and serving after both refusals.
    def recheck():
        return (yield from client.read("/data", 0, 512))

    assert sim.run_process(recheck()) == bytes(512)


def test_target_rejects_duplicate_attach():
    sim, target, fabric, connection, _client = build_rig()
    with pytest.raises(InvalidArgument, match="already attached"):
        target.attach(connection)


# ---------------------------------------------------------------------------
# INSTALL_CHAIN: server-side re-verification
# ---------------------------------------------------------------------------


def test_unsafe_program_is_refused_with_reason():
    sim, target, _fabric, _connection, client = build_rig()
    build_tree(target, depth=2)
    good = index_traversal_program()
    bad = Program(assemble("mov r0, r7\nexit"),
                  storage_ctx_layout(PAGE_SIZE, 256), name="evil")

    def install_bad():
        yield from client.install_chain("/index", bad)

    with pytest.raises(RemoteVerifierRejected) as excinfo:
        sim.run_process(install_bad())
    assert "uninitialised" in excinfo.value.reason
    assert target.refused == {"EVERIFY": 1}
    assert target.executed.get("install_chain") is None

    # The refusal did not take the target down: a good program installs
    # and executes afterwards over the same connection.
    def install_good():
        chain_id = yield from client.install_chain("/index", good)
        return chain_id

    assert sim.run_process(install_good()) == 1
    assert target.executed["install_chain"] == 1


def test_exec_unknown_chain_id_is_refused():
    sim, _target, _fabric, _connection, client = build_rig()

    def workload():
        yield from client.exec_chain(99, 0, PAGE_SIZE, args=(1,))

    with pytest.raises(RemoteError) as excinfo:
        sim.run_process(workload())
    assert excinfo.value.remote_errno is Errno.EINVAL


# ---------------------------------------------------------------------------
# Naive vs pushdown GETs
# ---------------------------------------------------------------------------


def test_pushdown_beats_naive_by_hop_count_shape():
    depth, rtt_us = 4, 20
    sim, target, _fabric, connection, client = build_rig(rtt_us=rtt_us)
    root, fanout, num_keys = build_tree(target, depth)
    program = index_traversal_program(fanout=fanout)
    keys = [key * 3 + 1 for key in (0, num_keys // 2, num_keys - 1)]
    latencies = {"naive": [], "pushdown": []}

    def workload():
        chain_id = yield from client.install_chain("/index", program)
        for mode in ("naive", "pushdown"):
            for key in keys:
                start = sim.now
                value, found, rpcs = yield from client.remote_btree_get(
                    key, mode=mode, path="/index", root_offset=root,
                    chain_id=chain_id)
                assert found and value == (key - 1) // 3
                assert rpcs == (depth if mode == "naive" else 1)
                latencies[mode].append(sim.now - start)

    sim.run_process(workload())
    # RPC accounting: depth READs per naive GET, one EXEC_CHAIN per
    # pushdown GET (these are the client-issued frames, not retries).
    assert connection.rpcs_sent["read"] == depth * len(keys)
    assert connection.rpcs_sent["exec_chain"] == len(keys)
    naive_mean = sum(latencies["naive"]) / len(keys)
    push_mean = sum(latencies["pushdown"]) / len(keys)
    # Acceptance criterion: >= 2x at RTT >= 20 us and depth >= 4.
    assert naive_mean >= 2.0 * push_mean
    # A miss is still answered (found=False) rather than erroring.

    def miss():
        return (yield from client.remote_btree_get(
            0, mode="naive", path="/index", root_offset=root))

    value, found, _rpcs = sim.run_process(miss())
    assert (value, found) == (None, False)


def test_remote_btree_get_validates_arguments():
    _sim, _target, _fabric, _connection, client = build_rig()
    with pytest.raises(ValueError, match="path"):
        next(client.remote_btree_get(1, mode="naive"))
    with pytest.raises(ValueError, match="chain_id"):
        next(client.remote_btree_get(1, mode="pushdown"))
    with pytest.raises(ValueError, match="unknown mode"):
        next(client.remote_btree_get(1, mode="psychic"))


# ---------------------------------------------------------------------------
# Loss, retry, and exactly-once execution
# ---------------------------------------------------------------------------


def test_drop_recovery_executes_exactly_once():
    # Every frame's first transmission drops (rate 1.0, burst 1), then
    # the per-(link, request-id) cooldown guarantees the retransmission
    # gets through — so recovery is deterministic regardless of seed.
    plan = FaultPlan(FaultSpec(seed=3, net_drop_rate=1.0), kernel_seed=3)
    sim, target, _fabric, connection, client = build_rig(plan=plan)
    target.create_file("/data", bytes(8192))

    def workload():
        written = yield from client.write("/data", 0, b"x" * 512)
        data = yield from client.read("/data", 0, 512)
        return written, data

    written, data = sim.run_process(workload())
    assert written == 512
    assert data == b"x" * 512
    # Loss happened and was recovered by retransmission...
    assert connection.retries > 0
    assert connection.c2s.frames_dropped + connection.s2c.frames_dropped > 0
    # ...but each op executed exactly once: the duplicate requests that
    # raced a lost *reply* were answered from the dedup cache.
    assert target.executed == {"write": 1, "read": 1}
    assert connection.dedup_hits > 0


def test_dedup_cache_evicts_lru_not_insertion_order():
    # Regression: with a tiny cache and insertion-order eviction, a
    # request id the client is *still retransmitting* gets displaced by
    # newer traffic and the op re-executes — breaking exactly-once.
    # The LRU touch on a dedup hit keeps the hot id alive instead.
    sim, target, fabric, connection, _client = build_rig(dedup_capacity=2)
    target.create_file("/data", bytes(8192))

    def send(request_id):
        frame = wire.encode_frame(wire.OP_READ, request_id,
                                  wire.encode_read("/data", 0, 512))
        fabric.transmit(connection.c2s, frame, request_id=request_id)

    send(1)   # executes; cache [1]
    send(2)   # executes; cache [1, 2] — full
    send(1)   # dedup hit, LRU touch; cache [2, 1]
    send(3)   # executes; evicts 2 (LRU). FIFO would have evicted 1.
    send(1)   # dedup hit again: 1 survived the eviction
    sim.run(until=50_000_000)

    assert target.executed == {"read": 3}        # never re-executed
    assert connection.dedup_hits == 2
    assert connection.dedup_evictions == 1


def test_persistent_loss_raises_rpc_timeout():
    plan = FaultPlan(FaultSpec(seed=3, net_drop_rate=1.0,
                               net_drop_burst=1_000_000), kernel_seed=3)
    sim, target, _fabric, connection, client = build_rig(
        plan=plan, max_retries=2)
    target.create_file("/data", bytes(8192))

    def workload():
        yield from client.read("/data", 0, 512)

    with pytest.raises(RpcTimeout, match="3 attempts") as excinfo:
        sim.run_process(workload())
    assert target.executed == {}
    # The exception carries structured fields — a failover policy (the
    # cluster client) branches on these, never on the message text.
    timeout = excinfo.value
    assert timeout.op == "read"
    assert timeout.request_id == 1
    assert timeout.attempts == 3
    assert timeout.timeout_ns == connection.timeout_ns


def test_net_delay_slows_but_does_not_break():
    plan = FaultPlan(FaultSpec(seed=3, net_delay_rate=1.0,
                               net_delay_ns=100_000), kernel_seed=3)
    sim, target, _fabric, connection, client = build_rig(plan=plan)
    target.create_file("/data", bytes(8192))

    def workload():
        return (yield from client.read("/data", 0, 512))

    start = sim.now
    assert sim.run_process(workload()) == bytes(512)
    # Request and reply frames each held 100 us beyond the base RTT.
    assert sim.now - start >= 2 * 100_000 + 20_000
    assert connection.c2s.frames_delayed == 1
    assert connection.s2c.frames_delayed == 1
    assert connection.retries == 0


def test_combined_fault_domains_surface_typed_and_recover():
    """Power loss mid-destage + episodic net drops + in-flight RPCs.

    Two independent fault domains fire in one run: the fabric drops
    frames in bursts while the target's device loses power during a
    write-cache destage.  Every client-visible outcome must be either
    success, a *typed* remote refusal, or an RPC timeout — never a
    torn or garbled reply — and after journal-replay recovery the
    target passes fsck and serves again.
    """
    from repro.faults import fault_injection
    from repro.kernel import JournalConfig
    from repro.kernel.recovery import fsck

    spec = FaultSpec(seed=5, net_drop_rate=0.25, net_drop_burst=2,
                     power_loss_after_flushes=1)
    with fault_injection(spec):
        sim = Simulator()
        target = StorageTarget(
            sim, model=NVM2_BENCH,
            config=KernelConfig(cores=2, seed=5, write_cache_depth=4,
                                journal=JournalConfig(journal_blocks=32)))
        fabric = NetworkFabric(sim, NetConfig(one_way_ns=5_000, seed=5))
    connection = Connection(fabric, "client", max_retries=3)
    target.attach(connection)
    client = RemoteClient(connection)
    target.create_file("/data", bytes(64 * 1024))
    # Make the untimed setup durable — recovery must not roll the file
    # system back past the file's creation.
    target.kernel.fs.checkpoint_sync()

    outcomes = []

    def writer(index):
        # Several writers keep RPCs in flight when the power dies.
        for op in range(6):
            slot = (index * 6 + op) % 16
            try:
                yield from client.write("/data", slot * 4096,
                                        bytes([index + 1]) * 4096)
                outcomes.append("ok")
            except RemoteError as error:
                outcomes.append(error.remote_errno.name)
            except RpcTimeout:
                outcomes.append("timeout")

    for index in range(3):
        sim.spawn(writer(index), name=f"writer-{index}")
    sim.run(until=1_000_000_000)

    assert len(outcomes) == 18
    # The cut surfaced: some ops failed, all of them *typed*.
    assert set(outcomes) <= {"ok", "EPOWERFAIL", "EREMOTE", "timeout"}
    assert any(outcome != "ok" for outcome in outcomes)
    assert connection.bad_frames == 0            # never a torn reply

    # Journal replay brings the target back to a consistent tree...
    target.kernel.recover()
    assert fsck(target.kernel.fs).ok
    # ...and it serves a fresh client again (same faulty network).
    after = Connection(fabric, "client2")
    target.attach(after)

    def recheck():
        return (yield from RemoteClient(after).read("/data", 0, 512))

    assert len(sim.run_process(recheck())) == 512


# ---------------------------------------------------------------------------
# Flow control and fabric behaviour
# ---------------------------------------------------------------------------


def test_inflight_window_bounds_concurrency():
    sim, target, _fabric, connection, client = build_rig(window=2)
    target.create_file("/data", bytes(64 * 1024))
    done = []

    def one(index):
        data = yield from client.read("/data", index * 512, 512)
        done.append((index, len(data)))

    for index in range(6):
        sim.spawn(one(index), name=f"get-{index}")
    sim.run(until=50_000_000)
    assert len(done) == 6
    assert connection.max_inflight == 2


def test_serialization_queues_behind_earlier_frames():
    config = NetConfig(one_way_ns=0, gbit_per_s=1.0)  # 8 ns per byte
    assert config.serialize_ns(1000) == 8000
    sim = Simulator()
    fabric = NetworkFabric(sim, config)
    link = fabric.new_link("wire")
    arrivals = []
    link.deliver = lambda frame: arrivals.append((sim.now, len(frame)))
    fabric.transmit(link, bytes(1000))
    fabric.transmit(link, bytes(1000))
    sim.run(until=100_000)
    # The second frame waits for the first to clock out: 8 us then 16 us.
    assert arrivals == [(8000, 1000), (16000, 1000)]
    assert link.bytes_sent == 2000


def test_net_config_validation():
    with pytest.raises(InvalidArgument, match="one_way_ns"):
        NetConfig(one_way_ns=-1)
    with pytest.raises(InvalidArgument, match="gbit_per_s"):
        NetConfig(gbit_per_s=0)
    with pytest.raises(InvalidArgument, match="jitter"):
        NetConfig(jitter=1.5)
    with pytest.raises(InvalidArgument, match="window"):
        build_rig(window=0)
    with pytest.raises(InvalidArgument, match="no receiver"):
        sim = Simulator()
        fabric = NetworkFabric(sim, NetConfig())
        fabric.transmit(fabric.new_link("dangling"), b"frame")


def test_jitter_is_deterministic_and_bounded():
    def run(seed):
        sim = Simulator()
        fabric = NetworkFabric(sim, NetConfig(one_way_ns=10_000,
                                              jitter=0.5, seed=seed))
        link = fabric.new_link("wire")
        arrivals = []
        link.deliver = lambda frame: arrivals.append(sim.now)
        for _ in range(20):
            fabric.transmit(link, bytes(100))
        sim.run(until=10_000_000)
        return arrivals

    first, second = run(5), run(5)
    assert first == second
    assert run(5) != run(6)
    # Jitter only ever adds: no frame arrives before the base latency.
    assert all(now >= 10_000 for now in first)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_remote_workload_is_deterministic():
    def run():
        sim, target, _fabric, connection, client = build_rig(rtt_us=10)
        root, fanout, num_keys = build_tree(target, depth=3)
        program = index_traversal_program(fanout=fanout)
        trace = []

        def workload():
            chain_id = yield from client.install_chain("/index", program)
            for key in (1, (num_keys // 2) * 3 + 1, (num_keys - 1) * 3 + 1):
                start = sim.now
                value, found, _ = yield from client.remote_btree_get(
                    key, mode="pushdown", chain_id=chain_id,
                    root_offset=root)
                trace.append((key, value, found, sim.now - start))

        sim.run_process(workload())
        return trace, dict(connection.rpcs_sent)

    assert run() == run()


# ---------------------------------------------------------------------------
# Observability integration
# ---------------------------------------------------------------------------


def test_net_metrics_account_rpcs_bytes_and_drops():
    from repro.faults import FAULT_NET_DROP
    from repro.obs import ObsSession

    plan = FaultPlan(FaultSpec(seed=3, net_drop_rate=1.0), kernel_seed=3)
    with ObsSession() as obs:
        sim, target, _fabric, connection, client = build_rig(plan=plan)
        root, fanout, num_keys = build_tree(target, depth=3)
        program = index_traversal_program(fanout=fanout)

        def workload():
            chain_id = yield from client.install_chain("/index", program)
            for key in (1, (num_keys - 1) * 3 + 1):
                for mode in ("naive", "pushdown"):
                    value, found, _ = yield from client.remote_btree_get(
                        key, mode=mode, path="/index", root_offset=root,
                        chain_id=chain_id)
                    assert found and value == (key - 1) // 3

        sim.run_process(workload())

    registry = obs.registry
    rpcs = registry.get("net_rpcs_total")
    # Client-issued frames, counted per transmission attempt: under a
    # first-attempt-always-drops plan they exceed the logical RPC count
    # but stay consistent with the connection's own counters.
    assert rpcs.value(op="read") == connection.rpcs_sent["read"]
    assert rpcs.value(op="exec_chain") == connection.rpcs_sent["exec_chain"]
    assert rpcs.value(op="install_chain") == \
        connection.rpcs_sent["install_chain"]
    assert connection.rpcs_sent["read"] >= 2 * 3     # depth RPCs per GET
    assert connection.rpcs_sent["exec_chain"] >= 2   # one per pushdown GET
    net_bytes = registry.get("net_bytes_total")
    assert net_bytes.value(direction="c2s") > 0
    assert net_bytes.value(direction="s2c") > 0
    assert registry.get("net_retries_total").value(op="read") > 0
    # The fabric's drops land in the shared fault counter by kind.
    assert registry.get("faults_injected_total").value(
        kind=FAULT_NET_DROP) > 0
    assert registry.get("net_inflight").value() == 0
