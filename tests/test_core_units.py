"""Unit tests for the extent cache, accounting, hooks layout, and install."""

import pytest

from repro.core import (
    ChainAccounting,
    Hook,
    NvmeExtentCache,
    storage_ctx_layout,
    storage_helpers,
)
from repro.core.extent_cache import Translation
from repro.core.install import BpfInstallation
from repro.device import BlockDevice
from repro.ebpf import Program, assemble, verify
from repro.ebpf.vm import VmEnvironment
from repro.errors import InvalidArgument, VerifierError
from repro.kernel.extfs import BLOCK_SIZE, ExtFs


def make_fs(blocks=64, **kwargs):
    return ExtFs(BlockDevice(blocks * 8), **kwargs)


# ---------------------------------------------------------------------------
# NvmeExtentCache
# ---------------------------------------------------------------------------


def test_cache_translate_ok():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (4 * BLOCK_SIZE))
    cache = NvmeExtentCache(fs)
    entry = cache.install(inode)
    translation = entry.translate(BLOCK_SIZE, 512)
    assert translation.status == Translation.OK
    assert translation.sectors == 1
    assert translation.lba == inode.extents.lookup(1) * 8


def test_cache_translate_sub_block_offset():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * BLOCK_SIZE)
    cache = NvmeExtentCache(fs)
    entry = cache.install(inode)
    translation = entry.translate(1024, 512)
    assert translation.status == Translation.OK
    assert translation.lba == inode.extents.lookup(0) * 8 + 2


def test_cache_translate_miss_beyond_snapshot():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * BLOCK_SIZE)
    cache = NvmeExtentCache(fs)
    entry = cache.install(inode)
    # Grow after install: new blocks are not in the snapshot.
    fs.write_sync(inode, BLOCK_SIZE, b"y" * BLOCK_SIZE)
    assert entry.valid  # growth does not invalidate...
    translation = entry.translate(BLOCK_SIZE, 512)
    assert translation.status == Translation.MISS  # ...but misses


def test_cache_translate_split_across_extents():
    fs = make_fs(max_extent_blocks=1)
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (2 * BLOCK_SIZE))
    assert fs.fragmentation_of(inode) == 2
    cache = NvmeExtentCache(fs)
    entry = cache.install(inode)
    translation = entry.translate(0, 2 * BLOCK_SIZE)
    assert translation.status == Translation.SPLIT


def test_cache_translate_unaligned_misses():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * BLOCK_SIZE)
    entry = NvmeExtentCache(fs).install(inode)
    assert entry.translate(100, 512).status == Translation.MISS
    assert entry.translate(0, 100).status == Translation.MISS


def test_cache_invalidated_on_unmap_only():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (4 * BLOCK_SIZE))
    cache = NvmeExtentCache(fs)
    entry = cache.install(inode)
    fs.write_sync(inode, 10 * BLOCK_SIZE, b"y" * BLOCK_SIZE)  # grow
    assert entry.valid
    fs.punch_range(inode, 0, BLOCK_SIZE)  # unmap
    assert not entry.valid
    assert cache.invalidations == 1


def test_cache_other_inode_unmap_does_not_invalidate():
    fs = make_fs()
    a = fs.create("/a")
    b = fs.create("/b")
    fs.write_sync(a, 0, b"x" * BLOCK_SIZE)
    fs.write_sync(b, 0, b"y" * BLOCK_SIZE)
    cache = NvmeExtentCache(fs)
    entry = cache.install(a)
    fs.punch_range(b, 0, BLOCK_SIZE)
    assert entry.valid


def test_cache_reinstall_revalidates():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * (2 * BLOCK_SIZE))
    cache = NvmeExtentCache(fs)
    first = cache.install(inode)
    fs.punch_range(inode, BLOCK_SIZE, BLOCK_SIZE)
    assert not first.valid
    second = cache.install(inode)
    assert second.valid
    assert second.epoch > first.epoch
    assert cache.entry(inode) is second


def test_cache_lookup_block_many_extents_matches_linear_reference():
    """Regression for the bisect lookup on a heavily fragmented snapshot."""
    from repro.core.extent_cache import CacheEntry

    # 500 one-block extents with a gap after each: file blocks 0, 2, 4, ...
    # handed over deliberately unsorted.
    extents = [(2 * i, 1000 + 3 * i, 1) for i in range(500)]
    extents.reverse()
    entry = CacheEntry(1, extents, epoch=1)

    def linear(file_block):
        for start, phys, count in extents:
            if start <= file_block < start + count:
                return phys + (file_block - start)
        return None

    for file_block in range(-2, 1002):
        assert entry.lookup_block(file_block) == linear(file_block), \
            file_block


def test_cache_lookup_block_multi_block_extents():
    from repro.core.extent_cache import CacheEntry

    entry = CacheEntry(1, [(0, 100, 4), (8, 200, 2)], epoch=1)
    assert entry.lookup_block(0) == 100
    assert entry.lookup_block(3) == 103
    assert entry.lookup_block(4) is None   # gap
    assert entry.lookup_block(8) == 200
    assert entry.lookup_block(9) == 201
    assert entry.lookup_block(10) is None  # past the last extent
    assert CacheEntry(1, [], epoch=1).lookup_block(0) is None


def test_cache_force_invalidate_idempotent():
    fs = make_fs()
    inode = fs.create("/f")
    fs.write_sync(inode, 0, b"x" * BLOCK_SIZE)
    cache = NvmeExtentCache(fs)
    entry = cache.install(inode)
    cache.force_invalidate(entry, reason="fault")
    cache.force_invalidate(entry, reason="fault")
    assert not entry.valid
    assert cache.invalidations == 1


# ---------------------------------------------------------------------------
# ChainAccounting
# ---------------------------------------------------------------------------


def test_accounting_bound():
    acct = ChainAccounting(max_chain_hops=3)
    assert acct.may_resubmit(1, 2)
    assert not acct.may_resubmit(1, 3)
    assert acct.budget_remaining(1) == 2
    assert acct.budget_remaining(5) == 0


def test_accounting_charge_and_drain():
    acct = ChainAccounting()
    for _ in range(4):
        acct.charge(7)
    acct.charge(9)
    assert acct.pending(7) == 4
    assert acct.drain_to_bio() == {7: 4, 9: 1}
    assert acct.pending(7) == 0
    assert acct.totals == {7: 4, 9: 1}


def test_accounting_rejects_bad_bound():
    with pytest.raises(InvalidArgument):
        ChainAccounting(max_chain_hops=0)


# ---------------------------------------------------------------------------
# Storage ctx layout + helpers
# ---------------------------------------------------------------------------


def test_storage_layout_offsets():
    layout = storage_ctx_layout(4096, 256)
    assert layout.offset_of("data") == 0
    assert layout.offset_of("action") == 72
    assert layout.offset_of("next_offset") == 80
    assert layout.size == 104
    assert layout.by_name["data"].region_size == 4096
    assert layout.by_name["scratch"].writable


def test_storage_helpers_include_base_and_extras():
    helpers = storage_helpers()
    names = helpers.names()
    assert "map_lookup" in names
    assert "get_chain_budget" in names
    assert "trace_offset" in names


def test_chain_budget_helper_reads_vm_attribute():
    helpers = storage_helpers()
    layout = storage_ctx_layout()
    source = """
        mov   r6, r1
        call  get_chain_budget
        stxdw [r6+88], r0
        mov   r0, 0
        exit
    """
    program = Program(assemble(source, helpers.names()), layout)
    verify(program, helpers)
    from repro.ebpf.vm import Vm

    vm = Vm(program, VmEnvironment(helpers))
    vm.chain_budget = 17
    ctx = bytearray(layout.size)
    vm.run(ctx, {"data": bytearray(4096), "scratch": bytearray(256)})
    assert int.from_bytes(ctx[88:96], "little") == 17


# ---------------------------------------------------------------------------
# BpfInstallation validation
# ---------------------------------------------------------------------------


def _verified_noop(block_size=4096, scratch_size=256):
    helpers = storage_helpers()
    program = Program(assemble("mov r0, 0\nexit"),
                      storage_ctx_layout(block_size, scratch_size))
    verify(program, helpers)
    return program, helpers


def test_install_requires_verified_program():
    helpers = storage_helpers()
    program = Program(assemble("mov r0, 0\nexit"), storage_ctx_layout())
    with pytest.raises(VerifierError):
        BpfInstallation(program, Hook.NVME, 4096, 256,
                        VmEnvironment(helpers))


def test_install_validates_block_size():
    program, helpers = _verified_noop()
    with pytest.raises(InvalidArgument):
        BpfInstallation(program, Hook.NVME, 1000, 256,
                        VmEnvironment(helpers))


def test_install_validates_layout_block_match():
    program, helpers = _verified_noop(block_size=4096)
    with pytest.raises(InvalidArgument, match="block"):
        BpfInstallation(program, Hook.NVME, 8192, 256,
                        VmEnvironment(helpers))


def test_install_validates_scratch_match():
    program, helpers = _verified_noop(scratch_size=128)
    with pytest.raises(InvalidArgument, match="scratch"):
        BpfInstallation(program, Hook.NVME, 4096, 256,
                        VmEnvironment(helpers))


def test_install_pads_default_args():
    program, helpers = _verified_noop()
    install = BpfInstallation(program, Hook.NVME, 4096, 256,
                              VmEnvironment(helpers), default_args=(1, 2))
    assert install.default_args == (1, 2, 0, 0)
    assert install.hook_kind == "nvme"


def test_install_rejects_too_many_args():
    program, helpers = _verified_noop()
    with pytest.raises(InvalidArgument):
        BpfInstallation(program, Hook.NVME, 4096, 256,
                        VmEnvironment(helpers), default_args=(1, 2, 3, 4, 5))
