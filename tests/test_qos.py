"""repro.qos: tenants, shapers, admission backpressure, fair sharing.

Covers the deterministic shaper primitives (token bucket, start-time-fair
WFQ), the QosManager policy surface (system-traffic bypass, per-tenant
counters, QoS tracepoints), the kernel-level acceptance criterion (two
backlogged tenants with 3:1 weights split device IOPS within 5 % of
3:1), wire-level EAGAIN backpressure with deterministic client backoff,
tenant-keyed chain accounting (the pid-leak regression), and the
``InstallRequest.jit`` deprecation path.
"""

import json

import pytest

from repro.bench.experiments import tenants
from repro.bench.runner import NVM2_BENCH, BtreeBench
from repro.core import Hook
from repro.core.accounting import ChainAccounting
from repro.core.api import InstallRequest
from repro.core.library import index_traversal_program
from repro.errors import Errno, InvalidArgument, QosRejected, RemoteError
from repro.kernel import KernelConfig
from repro.kernel.process import Process
from repro.net import (
    Connection,
    NetConfig,
    NetworkFabric,
    RemoteClient,
    StorageTarget,
    wire,
)
from repro.obs import events as obs_events
from repro.obs.bus import TraceBus
from repro.qos import QosConfig, QosManager, Tenant
from repro.qos.shapers import SCALE, TokenBucket, WfqScheduler
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------


def test_token_bucket_take_grants_burst_then_refuses():
    bucket = TokenBucket(tokens_per_ms=1, burst=2, now_ns=0)
    assert bucket.take(0) == 0
    assert bucket.take(0) == 0
    retry = bucket.take(0)
    assert retry == SCALE  # one token = 1 ms = 1_000_000 ns at rate 1/ms


def test_token_bucket_refusal_consumes_nothing():
    bucket = TokenBucket(tokens_per_ms=1, burst=1, now_ns=0)
    assert bucket.take(0) == 0
    first = bucket.take(0)
    second = bucket.take(0)
    assert first == second > 0  # refused takes must not drain the level


def test_token_bucket_retry_after_is_exact():
    bucket = TokenBucket(tokens_per_ms=1, burst=1, now_ns=0)
    assert bucket.take(0) == 0
    retry = bucket.take(0)
    # One tick early the take still refuses; at exactly now + retry it
    # succeeds — the advertised retry_after_ns is tight, not a hint.
    assert bucket.take(retry - 1) > 0
    assert bucket.take(retry) == 0


def test_token_bucket_pace_accrues_debt():
    bucket = TokenBucket(tokens_per_ms=1, burst=1, now_ns=0)
    assert bucket.pace(0) == 0  # burst token
    delays = [bucket.pace(0) for _ in range(3)]
    assert delays == sorted(delays)  # monotone growth under sustained rate
    assert delays[0] == SCALE and delays[-1] == 3 * SCALE


def test_token_bucket_level_caps_at_capacity():
    bucket = TokenBucket(tokens_per_ms=10, burst=2, now_ns=0)
    bucket.take(0)
    bucket._advance(10 ** 12)  # a long idle period refills to burst only
    assert bucket.level == bucket.capacity
    assert bucket.take(10 ** 12) == 0
    assert bucket.take(10 ** 12) == 0
    assert bucket.take(10 ** 12) > 0


def test_token_bucket_validates_parameters():
    with pytest.raises(InvalidArgument):
        TokenBucket(tokens_per_ms=0, burst=1)
    with pytest.raises(InvalidArgument):
        TokenBucket(tokens_per_ms=1, burst=0)


# ---------------------------------------------------------------------------
# Weighted-fair queueing
# ---------------------------------------------------------------------------


def weights_3_to_1(key):
    return {"a": 3, "b": 1}.get(key, 1)


def test_wfq_backlogged_flows_split_by_weight():
    wfq = WfqScheduler(weights_3_to_1)
    for index in range(400):
        wfq.push("a", ("a", index))
        wfq.push("b", ("b", index))
    served = [wfq.pop()[0] for _ in range(160)]
    # Start-time-fair queueing makes the 3:1 split exact over any
    # window that is a multiple of weight_a + weight_b dispatches.
    assert served.count("a") == 120
    assert served.count("b") == 40


def test_wfq_dispatch_order_is_deterministic():
    def run():
        wfq = WfqScheduler(weights_3_to_1)
        for index in range(50):
            wfq.push("b", ("b", index))
            wfq.push("a", ("a", index))
        return [wfq.pop() for _ in range(len(wfq))]

    assert run() == run()


def test_wfq_is_work_conserving():
    wfq = WfqScheduler(weights_3_to_1)
    for index in range(4):
        wfq.push("a", index)
    for index in range(8):
        wfq.push("b", index)
    served = [wfq.pop()[0] for _ in range(12)]
    # Once the weight-3 flow drains, the weight-1 flow gets every slot —
    # an idle flow's share is redistributed, never reserved.
    assert served.count("a") == 4
    assert served[-6:] == ["b"] * 6


def test_wfq_tracks_per_flow_depth():
    wfq = WfqScheduler(weights_3_to_1)
    assert wfq.push("a", 1) == 1
    assert wfq.push("a", 2) == 2
    assert wfq.push("b", 1) == 1
    wfq.pop()
    assert wfq.key_depth == {"a": 1, "b": 1}
    wfq.pop()
    wfq.pop()
    assert wfq.key_depth == {}


# ---------------------------------------------------------------------------
# QosConfig / Tenant validation
# ---------------------------------------------------------------------------


def test_tenant_validation():
    with pytest.raises(InvalidArgument, match="name"):
        Tenant("")
    with pytest.raises(InvalidArgument, match="weight"):
        Tenant("t", weight=0)
    with pytest.raises(InvalidArgument, match="admit_tokens_per_ms"):
        Tenant("t", admit_tokens_per_ms=0)


def test_qos_config_validation_and_lookup():
    with pytest.raises(InvalidArgument, match="duplicate"):
        QosConfig(tenants=(Tenant("t"), Tenant("t")))
    config = QosConfig(tenants=(Tenant("a", weight=3),), default_weight=2,
                       system_weight=9)
    assert config.weight_of("a") == 3
    assert config.weight_of("undeclared") == 2  # default weight
    assert config.weight_of(None) == 9          # kernel-internal traffic
    assert config.tenant("a").weight == 3
    assert config.tenant("undeclared").weight == 2


# ---------------------------------------------------------------------------
# QosManager policy
# ---------------------------------------------------------------------------


def make_manager(config, now=(0,)):
    clock = lambda: now[0]  # noqa: E731 - mutable closure clock
    return QosManager(config, clock=clock)


def test_manager_admit_refuses_over_rate_and_counts():
    config = QosConfig(tenants=(Tenant("t"),), admit_tokens_per_ms=1,
                       admit_burst=2)
    manager = make_manager(config)
    assert manager.admit("t") == 0
    assert manager.admit("t") == 0
    retry = manager.admit("t")
    assert retry > 0
    assert manager.admit("t") == retry  # refusal consumed nothing
    assert manager.admitted == {"t": 2}
    assert manager.admit_rejected == {"t": 2}


def test_manager_system_traffic_is_never_refused():
    config = QosConfig(admit_tokens_per_ms=1, admit_burst=1)
    manager = make_manager(config)
    for _ in range(10):
        assert manager.admit(None) == 0
    assert manager.admit_rejected == {}


def test_manager_per_tenant_rate_overrides_config():
    config = QosConfig(
        tenants=(Tenant("slow", admit_tokens_per_ms=1, admit_burst=1),),
        admit_tokens_per_ms=0)  # admission globally off...
    manager = make_manager(config)
    assert manager.admit("fast") == 0  # ...so undeclared tenants sail
    assert manager.admit("fast") == 0
    assert manager.admit("slow") == 0  # ...but the override still bites
    assert manager.admit("slow") > 0


def test_manager_chain_pace_shapes_only_tenants():
    config = QosConfig(tenants=(Tenant("t", weight=2),),
                       chain_tokens_per_ms=1, chain_burst=1)
    manager = make_manager(config)
    assert manager.chain_pace(None) == 0  # untenanted chains never paced
    assert manager.chain_pace("t") == 0   # burst
    delay = manager.chain_pace("t")
    # Rate scales with weight: 2 tokens/ms -> half a ms per excess token.
    assert delay == SCALE // 2
    assert manager.chain_throttles == {"t": 1}
    assert manager.chain_throttle_ns == {"t": delay}


def test_manager_emits_qos_tracepoints():
    bus = TraceBus(enabled=True)
    events = []
    bus.subscribe(lambda event: events.append(event))
    config = QosConfig(tenants=(Tenant("t"),), admit_tokens_per_ms=1,
                       admit_burst=1, chain_tokens_per_ms=1, chain_burst=1)
    manager = QosManager(config, bus=bus, clock=lambda: 42)
    manager.admit("t")
    manager.admit("t")       # -> qos_admit_reject
    manager.chain_pace("t")
    manager.chain_pace("t")  # -> qos_throttle
    manager.note_depth(0, "t", 3)
    manager.note_depth(1, None, 1)
    kinds = [event.etype for event in events]
    assert kinds == [obs_events.QOS_ADMIT_REJECT, obs_events.QOS_THROTTLE,
                     obs_events.QOS_TENANT_DEPTH, obs_events.QOS_TENANT_DEPTH]
    assert events[0].fields["tenant"] == "t"
    assert events[0].fields["retry_after_ns"] > 0
    assert events[-1].fields["tenant"] == "_system"


# ---------------------------------------------------------------------------
# Kernel integration: weighted IOPS split (the acceptance criterion)
# ---------------------------------------------------------------------------


def run_weighted_split(duration_ns=4_000_000, threads=16, seed=5):
    """Two backlogged tenants (weights 3:1) hammer one device.

    16 closed-loop threads per tenant keeps *both* flows continuously
    backlogged at the submission queue (device parallelism is 7) —
    start-time-fair queueing only guarantees the weighted split for
    flows that always have work queued.
    """
    qos = QosConfig(tenants=(Tenant("a", weight=3), Tenant("b", weight=1)))
    bench = BtreeBench(depth=3, cores=8, seed=seed, qos=qos)
    sim = bench.sim
    counts = {"a": 0, "b": 0}
    workers = {"a": bench.chain_worker(Hook.NVME, tenant="a"),
               "b": bench.chain_worker(Hook.NVME, tenant="b")}

    def loop(tenant, index):
        one_op = yield from workers[tenant](index)
        while sim.now < duration_ns:
            yield from one_op()
            counts[tenant] += 1

    for index in range(threads):
        sim.spawn(loop("a", index), name=f"a-{index}")
        sim.spawn(loop("b", threads + index), name=f"b-{index}")
    sim.run(until=duration_ns)
    return counts, bench


def test_weighted_tenants_split_iops_3_to_1():
    counts, _bench = run_weighted_split()
    assert counts["b"] > 50  # both tenants made real progress
    ratio = counts["a"] / counts["b"]
    # ISSUE acceptance: weights 3:1 yield an IOPS split within 5 % of 3:1.
    assert abs(ratio - 3.0) <= 0.15, ratio


def test_weighted_split_is_deterministic():
    first, _ = run_weighted_split(duration_ns=1_000_000)
    second, _ = run_weighted_split(duration_ns=1_000_000)
    assert first == second


def test_tenants_experiment_is_deterministic():
    kwargs = dict(chain_depth=4, victim_threads=1, aggressor_threads=8,
                  duration_ns=500_000)
    first = tenants(**kwargs)
    second = tenants(**kwargs)
    assert json.dumps(first) == json.dumps(second)


# ---------------------------------------------------------------------------
# Wire backpressure: EAGAIN + deterministic client backoff
# ---------------------------------------------------------------------------


def build_qos_rig(qos, rtt_us=10, seed=7, tenant=None):
    sim = Simulator()
    target = StorageTarget(sim, model=NVM2_BENCH,
                           config=KernelConfig(cores=4, seed=seed, qos=qos))
    fabric = NetworkFabric(sim, NetConfig(one_way_ns=rtt_us * 1000 // 2,
                                          seed=seed))
    connection = Connection(fabric, "client")
    target.attach(connection, tenant=tenant)
    target.create_file("/x", bytes(4096))
    return sim, target, connection, RemoteClient(connection)


def drive_reads(sim, client, count):
    def driver():
        for _ in range(count):
            data = yield from client.read("/x", 0, 512)
            assert len(data) == 512

    sim.run_process(driver())


def test_remote_client_backs_off_on_eagain_and_completes():
    qos = QosConfig(admit_tokens_per_ms=1, admit_burst=2)
    sim, target, _conn, client = build_qos_rig(qos)
    drive_reads(sim, client, 6)
    # Burst admits 2; each later read is refused once, sleeps the
    # advertised retry_after_ns, and succeeds on the retry.
    assert client.qos_backoffs == 4
    assert target.refused == {"EAGAIN": 4}
    assert target.kernel.qos.admit_rejected == {"client": 4}
    assert target.kernel.qos.admitted == {"client": 6}
    # Backoff is paid in simulated time: ~1 ms per refill at 1 token/ms.
    assert sim.now > 4 * SCALE


def test_wire_backpressure_is_deterministic():
    def run():
        qos = QosConfig(admit_tokens_per_ms=1, admit_burst=2)
        sim, _target, _conn, client = build_qos_rig(qos)
        drive_reads(sim, client, 6)
        return sim.now, client.qos_backoffs

    assert run() == run()


def test_remote_client_surfaces_qos_rejected_after_max_retries():
    qos = QosConfig(admit_tokens_per_ms=1, admit_burst=1)
    sim, target, _conn, client = build_qos_rig(qos)
    # A target that never relents: every admit refuses with the same
    # retry-after, so the client exhausts its budget and raises typed.
    target.kernel.qos.admit = lambda tenant, cost=1: 777
    with pytest.raises(QosRejected) as excinfo:
        drive_reads(sim, client, 1)
    assert excinfo.value.errno is Errno.EAGAIN
    assert excinfo.value.retry_after_ns == 777
    assert excinfo.value.tenant == "client"
    assert client.qos_backoffs == client.max_qos_retries == 8


def test_system_connections_bypass_admission():
    qos = QosConfig(admit_tokens_per_ms=1, admit_burst=1)
    sim, target, _conn, client = build_qos_rig(qos, tenant="")
    # tenant="" is the infrastructure escape hatch: the connection's
    # process is untenanted and admission control never refuses it.
    assert target._clients["client"].proc.tenant is None
    drive_reads(sim, client, 8)
    assert client.qos_backoffs == 0
    assert target.refused == {}


def test_attach_defaults_tenant_to_connection_name_under_qos():
    qos = QosConfig(tenants=(Tenant("client", weight=5),))
    _sim, target, _conn, _client = build_qos_rig(qos)
    proc = target._clients["client"].proc
    assert proc.tenant is not None
    assert proc.tenant.name == "client"
    assert proc.tenant.weight == 5  # the declared Tenant, not a default

    # Without QoS armed, attach() keeps the pre-tenant behaviour.
    sim = Simulator()
    plain = StorageTarget(sim, model=NVM2_BENCH,
                          config=KernelConfig(cores=4, seed=7))
    fabric = NetworkFabric(sim, NetConfig(one_way_ns=5000, seed=7))
    plain.attach(Connection(fabric, "client"))
    assert plain._clients["client"].proc.tenant is None


def test_qos_reject_wire_roundtrip():
    body = wire.encode_qos_reject(12345, "over rate", "alice")
    assert wire.decode_qos_reject(body) == (12345, "over rate", "alice")
    with pytest.raises(QosRejected) as excinfo:
        wire.raise_for_reply(wire.STATUS_EAGAIN, body)
    assert excinfo.value.retry_after_ns == 12345
    assert excinfo.value.tenant == "alice"
    # Non-EAGAIN statuses keep the plain reason-string contract.
    with pytest.raises(RemoteError) as excinfo:
        wire.raise_for_reply(wire.status_for_errno("ENOENT"), b"gone")
    assert excinfo.value.remote_errno is Errno.ENOENT


# ---------------------------------------------------------------------------
# Tenant-keyed accounting (pid-leak regression)
# ---------------------------------------------------------------------------


def test_accounting_keys_by_tenant_across_incarnations():
    accounting = ChainAccounting()
    first = Process(1, "net-client", tenant=Tenant("alice"))
    for _ in range(3):
        accounting.charge(first)
    # A respawned process for the same tenant (new pid) reuses the row.
    second = Process(9, "net-client", tenant=Tenant("alice"))
    accounting.charge(second)
    assert accounting.totals == {"alice": 4}
    assert accounting.pending(second) == 4
    # Untenanted processes still account by pid.
    plain = Process(2, "legacy")
    accounting.charge(plain)
    assert accounting.totals == {"alice": 4, 2: 1}


def test_accounting_forget_clears_every_row():
    accounting = ChainAccounting()
    proc = Process(7, "net-client", tenant=Tenant("alice"))
    accounting.charge(proc)
    accounting.record_kill(proc)
    accounting.forget(proc)
    assert accounting.totals == {}
    assert accounting.chains_killed == {}
    assert accounting.pending(proc) == 0


def test_target_detach_forgets_client_accounting():
    sim, target, _conn, _client = build_qos_rig(QosConfig())
    proc = target._clients["client"].proc
    target.accounting.charge(proc)
    assert target.accounting.totals != {}
    target.detach("client")
    assert "client" not in target._clients
    assert target.accounting.totals == {}


def test_exec_chain_bills_the_connection_tenant():
    qos = QosConfig(tenants=(Tenant("client", weight=2),))
    sim, target, _conn, client = build_qos_rig(qos)
    from repro.structures import BTree, FsBackend

    inode = target.kernel.fs.create("/index")
    items = [(key * 3 + 1, key) for key in range(40)]
    BTree.build(FsBackend(target.kernel.fs, inode), items, fanout=4)
    tree = BTree(FsBackend(target.kernel.fs, inode))
    program = index_traversal_program(fanout=4)

    def driver():
        chain_id = yield from client.install_chain("/index", program)
        result = yield from client.exec_chain(
            chain_id, tree.meta.root_offset, args=(items[10][0],))
        assert result.ok

    sim.run_process(driver())
    # Resubmissions are charged to the tenant name, not the pid.
    assert "client" in target.accounting.totals
    assert target.accounting.totals["client"] > 0


# ---------------------------------------------------------------------------
# InstallRequest.jit deprecation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def program():
    return index_traversal_program(fanout=4)


def test_install_request_defaults_to_block_without_warning(program,
                                                           recwarn):
    request = InstallRequest(program)
    assert request.mode == "block"
    assert not any(isinstance(w.message, DeprecationWarning)
                   for w in recwarn.list)


def test_install_request_jit_warns_and_maps(program):
    with pytest.warns(DeprecationWarning, match="jit is deprecated"):
        assert InstallRequest(program, jit=True).mode == "block"
    with pytest.warns(DeprecationWarning, match="jit is deprecated"):
        assert InstallRequest(program, jit=False).mode == "interp"


def test_install_request_vm_mode_wins_over_compatible_jit(program):
    with pytest.warns(DeprecationWarning):
        assert InstallRequest(program, jit=True, vm_mode="jit").mode == "jit"


def test_install_request_rejects_contradictory_jit(program):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(InvalidArgument, match="jit"):
            InstallRequest(program, jit=True, vm_mode="interp")
    with pytest.warns(DeprecationWarning):
        with pytest.raises(InvalidArgument, match="jit"):
            InstallRequest(program, jit=False, vm_mode="block")


def test_install_request_rejects_unknown_vm_mode(program):
    with pytest.raises(InvalidArgument, match="vm_mode"):
        InstallRequest(program, vm_mode="turbo")


# ---------------------------------------------------------------------------
# Typed errno surface
# ---------------------------------------------------------------------------


def test_errno_mapping():
    assert Errno.from_name("EINVAL") is Errno.EINVAL
    assert Errno.from_name("EWHATEVER") is Errno.EREMOTE
    assert Errno.EAGAIN == 11


def test_qos_rejected_is_typed_eagain():
    error = QosRejected(retry_after_ns=500, tenant="t")
    assert error.errno is Errno.EAGAIN
    assert error.retry_after_ns == 500
    assert "retry after 500 ns" in str(error)
