"""Shared fixtures for chain tests: a linked-block file and its walker.

The linked-block structure is the smallest possible "dependent lookup"
workload: each 4 KiB block holds the file offset of the next block at byte 0
(``0xffff_ffff_ffff_ffff`` terminates) and a payload value at byte 8.  The
walker program resubmits until the terminator, then returns the payload.
"""

import struct

from repro.device import LatencyModel
from repro.ebpf import Program, assemble
from repro.core import Hook, StorageBpf, storage_ctx_layout
from repro.kernel import Kernel, KernelConfig
from repro.sim import Simulator

NVM2_EXACT = LatencyModel("nvm2-exact", read_ns=3224, write_ns=3600,
                          parallelism=8, jitter=0.0)

END = 0xFFFFFFFFFFFFFFFF

WALKER_SRC = """
    ldxdw r2, [r1+0]      ; data pointer
    ldxdw r3, [r2+0]      ; next offset
    lddw  r4, 0xffffffffffffffff
    jeq   r3, r4, done
    mov   r5, 1           ; ACTION_RESUBMIT
    stxdw [r1+72], r5
    stxdw [r1+80], r3
    mov   r0, 0
    exit
done:
    ldxdw r6, [r2+8]      ; payload
    mov   r5, 2           ; ACTION_RETURN_VALUE
    stxdw [r1+72], r5
    stxdw [r1+88], r6
    mov   r0, 0
    exit
"""


def linked_file_bytes(order, payload_base=1000):
    """Bytes of a file whose blocks chain in ``order`` (block indices)."""
    nblocks = max(order) + 1
    data = bytearray(nblocks * 4096)
    for position, block in enumerate(order):
        nxt = order[position + 1] * 4096 if position + 1 < len(order) else END
        struct.pack_into("<QQ", data, block * 4096, nxt,
                         payload_base + block)
    return bytes(data)


def build_machine(model=NVM2_EXACT, max_chain_hops=64, **config_kwargs):
    """(sim, kernel, bpf) with tracing on."""
    sim = Simulator()
    config_kwargs.setdefault("trace_device", True)
    kernel = Kernel(sim, model, KernelConfig(**config_kwargs))
    bpf = StorageBpf(kernel, max_chain_hops=max_chain_hops)
    return sim, kernel, bpf


def walker_program(bpf, name="walker", block_size=4096):
    program = Program(assemble(WALKER_SRC, bpf.helpers.names()),
                      storage_ctx_layout(block_size, 256), name=name)
    bpf.verify_program(program)
    return program


def install_walker(sim, kernel, bpf, path, hook=Hook.NVME, vm_mode=None,
                   proc=None, block_size=4096):
    """Open ``path``, install the walker; returns (proc, fd)."""
    proc = proc or kernel.spawn_process()
    program = walker_program(bpf, block_size=block_size)

    def setup():
        fd = yield from kernel.sys_open(proc, path)
        yield from bpf.install(proc, fd, program, hook=hook,
                               vm_mode=vm_mode, block_size=block_size)
        return fd

    fd = kernel.run_syscall(setup())
    return proc, fd
