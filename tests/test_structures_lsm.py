"""Tests for bloom filters, SSTables, the LSM tree, and the KV facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import BlockDevice
from repro.errors import InvalidArgument
from repro.kernel.extfs import ExtFs
from repro.structures import KvStore, LsmTree, MemoryBackend, SsTable
from repro.structures.lsm import TOMBSTONE, BloomFilter, CompactionPlan


def make_fs(blocks=4096):
    return ExtFs(BlockDevice(blocks * 8))


# ---------------------------------------------------------------------------
# Bloom filter
# ---------------------------------------------------------------------------


def test_bloom_no_false_negatives():
    bloom = BloomFilter.for_entries(1000)
    keys = [k * 7 + 1 for k in range(1000)]
    for key in keys:
        bloom.add(key)
    assert all(bloom.may_contain(key) for key in keys)


def test_bloom_false_positive_rate_reasonable():
    bloom = BloomFilter.for_entries(1000)
    for key in range(1000):
        bloom.add(key)
    false_positives = sum(
        bloom.may_contain(key) for key in range(10_000, 20_000))
    assert false_positives < 500  # ~1% expected at 10 bits/key


def test_bloom_serialisation():
    bloom = BloomFilter(256, 5)
    bloom.add(42)
    restored = BloomFilter.from_bytes(bloom.to_bytes(), 256, 5)
    assert restored.may_contain(42)
    assert not restored.may_contain(43)


def test_bloom_validation():
    with pytest.raises(InvalidArgument):
        BloomFilter(4)


# ---------------------------------------------------------------------------
# SSTable
# ---------------------------------------------------------------------------


def test_sstable_build_and_get():
    items = [(i * 3, i * 10) for i in range(1000)]
    table = SsTable.build(MemoryBackend(), items)
    assert table.num_entries == 1000
    assert (table.min_key, table.max_key) == (0, 999 * 3)
    for key, value in items[::37]:
        assert table.get(key) == value
    assert table.get(1) is None
    assert table.get(10**9) is None


def test_sstable_get_traced_is_three_hops():
    items = [(i, i) for i in range(600)]
    table = SsTable.build(MemoryBackend(), items)
    value, visited = table.get_traced(599)
    assert value == 599
    assert len(visited) == 3  # root index -> index -> data


def test_sstable_may_contain_uses_range_and_bloom():
    items = [(i * 2, i) for i in range(100, 200)]
    table = SsTable.build(MemoryBackend(), items)
    assert not table.may_contain(0)      # below range
    assert not table.may_contain(10**6)  # above range
    assert table.may_contain(200)        # in range and inserted


def test_sstable_entries_iterates_in_order():
    items = [(i * 5, i) for i in range(700)]
    table = SsTable.build(MemoryBackend(), items)
    assert list(table.entries()) == items


def test_sstable_rejects_bad_builds():
    with pytest.raises(InvalidArgument):
        SsTable.build(MemoryBackend(), [])
    with pytest.raises(InvalidArgument):
        SsTable.build(MemoryBackend(), [(2, 0), (1, 0)])


def test_sstable_reopen():
    backend = MemoryBackend()
    SsTable.build(backend, [(1, 10), (2, 20)])
    table = SsTable(backend)
    assert table.get(2) == 20


# ---------------------------------------------------------------------------
# LSM tree
# ---------------------------------------------------------------------------


def test_lsm_put_get_through_memtable():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=100)
    lsm.put(1, 10)
    assert lsm.get(1) == 10
    assert lsm.get(2) is None


def test_lsm_flush_on_threshold():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=10)
    for key in range(10):
        lsm.put(key, key)
    assert lsm.flushes == 1
    assert len(lsm.memtable) == 0
    for key in range(10):
        assert lsm.get(key) == key


def test_lsm_reads_prefer_newer_values():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=4)
    for round_number in range(3):
        for key in range(4):
            lsm.put(key, key + 100 * round_number)
    for key in range(4):
        assert lsm.get(key) == key + 200


def test_lsm_delete_tombstones():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=4)
    for key in range(4):
        lsm.put(key, key)          # flushed to disk
    lsm.delete(2)
    assert lsm.get(2) is None
    assert lsm.get(1) == 1


def test_lsm_tombstone_value_rejected():
    lsm = LsmTree(make_fs(), "/db")
    with pytest.raises(InvalidArgument):
        lsm.put(1, TOMBSTONE)


def test_lsm_compaction_merges_and_unlinks():
    fs = make_fs()
    lsm = LsmTree(fs, "/db", memtable_limit=8, l0_limit=2)
    for key in range(100):
        lsm.put(key, key * 2)
    lsm.flush()
    assert lsm.compactions >= 1
    assert lsm.tables_deleted >= 2
    for key in range(100):
        assert lsm.get(key) == key * 2
    # Deleted table files are gone from the namespace.
    live = fs.listdir("/db")
    assert len(live) == lsm.table_count()


def test_lsm_compaction_drops_tombstones_at_bottom():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=8, l0_limit=2)
    for key in range(40):
        lsm.put(key, key)
    for key in range(0, 40, 2):
        lsm.delete(key)
    lsm.flush()
    # Force full compaction to the bottom level.
    while len(lsm.levels[0]) > 0:
        lsm._compact(0)
    for key in range(40):
        expected = None if key % 2 == 0 else key
        assert lsm.get(key) == expected


def test_lsm_candidate_tables_newest_first():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=4, l0_limit=10)
    for round_number in range(3):
        for key in range(4):
            lsm.put(key, round_number)
    candidates = lsm.candidate_tables(0)
    assert len(candidates) >= 2
    # Newest table must come first so its value wins.
    assert candidates[0][1].get(0) == 2


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200),
                          st.integers(0, 2**32),
                          st.booleans()),
                min_size=1, max_size=300))
def test_lsm_matches_dict_reference(operations):
    lsm = LsmTree(make_fs(), "/db", memtable_limit=16, l0_limit=2)
    reference = {}
    for key, value, is_delete in operations:
        if is_delete:
            lsm.delete(key)
            reference.pop(key, None)
        else:
            lsm.put(key, value)
            reference[key] = value
    for key in range(0, 201, 7):
        assert lsm.get(key) == reference.get(key)


# ---------------------------------------------------------------------------
# Compaction planning (the repro.compact seam)
# ---------------------------------------------------------------------------


def test_lsm_tombstone_drop_survives_trailing_empty_levels():
    # Regression: the old bottom-level check compared against
    # len(levels) - 1, so planning at a deep level (which extends the
    # levels list with empty slots) made every later level-0 compaction
    # keep its tombstones forever.
    lsm = LsmTree(make_fs(), "/db", memtable_limit=64, l0_limit=8)
    for key in range(40):
        lsm.put(key, key)
    for key in range(0, 40, 2):
        lsm.delete(key)
    lsm.flush()
    assert lsm.plan_compaction(2) is None  # extends levels with empties
    assert len(lsm.levels) >= 4
    plan = lsm.plan_compaction(0)
    assert plan.drop_tombstones  # empty trailing levels are not "deeper data"
    lsm._compact(0)
    merged = list(lsm.levels[1][0][1].entries())
    assert all(value != TOMBSTONE for _key, value in merged)
    assert len(merged) == 20


def test_lsm_tombstones_kept_above_populated_bottom():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=64, l0_limit=8)
    for key in range(20):
        lsm.put(key, key)
    lsm.flush()
    lsm._compact(0)
    lsm._compact(1)  # push the data to level 2
    lsm.delete(3)
    lsm.flush()
    plan = lsm.plan_compaction(0)
    assert not plan.drop_tombstones  # level 2 still holds key 3
    lsm._compact(0)
    merged = list(lsm.levels[1][0][1].entries())
    assert (3, TOMBSTONE) in merged
    assert lsm.get(3) is None


def test_lsm_overlapping_l0_merge_order_newest_wins():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=64, l0_limit=8)
    for value in (1, 2, 3):  # three overlapping runs, same key range
        for key in range(10):
            lsm.put(key, value * 100 + key)
        lsm.flush()
    plan = lsm.plan_compaction(0)
    # merge_order folds oldest first so the newest run wins the upsert.
    assert plan.merge_order[-1] == lsm.levels[0][-1]
    lsm._compact(0)
    assert len(lsm.levels[0]) == 0
    merged = list(lsm.levels[1][0][1].entries())
    assert merged == [(key, 300 + key) for key in range(10)]


def test_lsm_single_run_trivial_compaction():
    lsm = LsmTree(make_fs(), "/db", memtable_limit=64, l0_limit=8)
    for key in range(10):
        lsm.put(key, key * 7)
    lsm.flush()
    before = list(lsm.levels[0][0][1].entries())
    lsm._compact(0)
    assert len(lsm.levels[0]) == 0
    assert len(lsm.levels[1]) == 1
    assert list(lsm.levels[1][0][1].entries()) == before
    assert lsm.compactions == 1
    assert lsm.tables_deleted == 1


def test_lsm_flush_during_compaction_survives():
    # A memtable flush that lands between plan and apply (the
    # CompactionEngine window) must not be clobbered by the level swap.
    lsm = LsmTree(make_fs(), "/db", memtable_limit=64, l0_limit=8)
    for key in range(10):
        lsm.put(key, 1)
    lsm.flush()
    plan = lsm.plan_compaction(0)
    merged = lsm._merge_tables([table for _p, table in plan.merge_order],
                               drop_tombstones=plan.drop_tombstones)
    for key in range(5):
        lsm.put(key, 2)  # concurrent writer
    lsm.flush()          # new L0 table mid-compaction
    lsm.apply_compaction(plan, merged)
    assert len(lsm.levels[0]) == 1  # the mid-compaction flush survived
    for key in range(10):
        assert lsm.get(key) == (2 if key < 5 else 1)


def test_lsm_compaction_invalidates_every_input_table():
    fs = make_fs()
    lsm = LsmTree(fs, "/db", memtable_limit=64, l0_limit=8)
    for run in range(3):
        for key in range(10):
            lsm.put(key + run * 5, run)
        lsm.flush()
    plan = lsm.plan_compaction(0)
    input_inodes = {fs.lookup(path).number for path in plan.input_paths()}
    unmapped = set()
    fs.extent_change_listeners.append(
        lambda inode, kind: unmapped.add(inode.number)
        if kind == "unmap" else None)
    merged = lsm._merge_tables([table for _p, table in plan.merge_order],
                               drop_tombstones=plan.drop_tombstones)
    lsm.apply_compaction(plan, merged)
    # Every unlinked input fired the unmap hook (NVMe extent-cache
    # invalidation), so concurrent chain gets fail closed, not stale.
    assert input_inodes <= unmapped


def test_compaction_plan_orders_inputs_and_merge():
    upper = [("/db/2", "t2"), ("/db/3", "t3")]
    lower = [("/db/1", "t1")]
    plan = CompactionPlan(0, upper, lower, True)
    assert plan.inputs == upper + lower
    assert plan.merge_order == lower + upper  # oldest data folds first
    assert plan.input_paths() == ["/db/1", "/db/2", "/db/3"]


# ---------------------------------------------------------------------------
# KvStore facade
# ---------------------------------------------------------------------------


def test_kvstore_btree_bulk_and_overlay():
    store = KvStore(make_fs(), "/index", engine="btree", fanout=8)
    store.bulk_load([(i, i) for i in range(100)])
    assert store.get(50) == 50
    store.put(50, 999)
    store.delete(51)
    assert store.get(50) == 999
    assert store.get(51) is None
    assert store.overlay_size == 2


def test_kvstore_btree_rebuild_applies_overlay():
    fs = make_fs()
    store = KvStore(fs, "/index", engine="btree", fanout=8)
    store.bulk_load([(i, i) for i in range(100)])
    store.put(200, 42)
    store.delete(3)
    count = store.rebuild()
    assert count == 100  # +1 insert, -1 delete
    assert store.overlay_size == 0
    assert store.get(200) == 42
    assert store.get(3) is None
    assert store.get(10) == 10


def test_kvstore_btree_scan_merges_overlay():
    store = KvStore(make_fs(), "/index", engine="btree", fanout=8)
    store.bulk_load([(i, i) for i in range(10)])
    store.put(5, 500)
    store.delete(6)
    assert store.scan(4, 8) == [(4, 4), (5, 500), (7, 7)]


def test_kvstore_lsm_engine_delegates():
    store = KvStore(make_fs(), "/db", engine="lsm", memtable_limit=8)
    for key in range(20):
        store.put(key, key)
    store.delete(7)
    assert store.get(7) is None
    assert store.get(8) == 8


def test_kvstore_validates_engine():
    with pytest.raises(InvalidArgument):
        KvStore(make_fs(), "/x", engine="hash")
