"""Tests for the block device, latency models, and NVMe device."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.device import (
    DEVICE_PROFILES,
    BlockDevice,
    IoTrace,
    LatencyModel,
    NVM_GEN2,
    NvmeCommand,
    NvmeDevice,
    TraceEntry,
)
from repro.errors import InvalidArgument, IoError
from repro.sim import RandomStreams, Simulator


# ---------------------------------------------------------------------------
# BlockDevice
# ---------------------------------------------------------------------------


def test_blockdev_read_unwritten_is_zero():
    dev = BlockDevice(16)
    assert dev.read(0, 2) == bytes(1024)


def test_blockdev_write_read_roundtrip():
    dev = BlockDevice(16)
    payload = bytes(range(256)) * 4  # 1024 bytes = 2 sectors
    dev.write(3, payload)
    assert dev.read(3, 2) == payload
    assert dev.read(2, 1) == bytes(512)


def test_blockdev_bounds_enforced():
    dev = BlockDevice(4)
    with pytest.raises(IoError):
        dev.read(3, 2)
    with pytest.raises(IoError):
        dev.write(4, bytes(512))
    with pytest.raises(InvalidArgument):
        dev.read(0, 0)


def test_blockdev_unaligned_write_rejected():
    dev = BlockDevice(4)
    with pytest.raises(InvalidArgument):
        dev.write(0, bytes(100))


def test_blockdev_discard():
    dev = BlockDevice(4)
    dev.write(1, bytes([7] * 512))
    assert dev.written_sectors() == 1
    dev.discard(0, 4)
    assert dev.written_sectors() == 0
    assert dev.read(1, 1) == bytes(512)


@given(st.data())
def test_blockdev_matches_reference_model(data):
    dev = BlockDevice(32)
    reference = bytearray(32 * 512)
    for _ in range(data.draw(st.integers(min_value=1, max_value=20))):
        lba = data.draw(st.integers(min_value=0, max_value=30))
        count = data.draw(st.integers(min_value=1, max_value=32 - lba))
        if data.draw(st.booleans()):
            payload = bytes([data.draw(st.integers(0, 255))]) * (count * 512)
            dev.write(lba, payload)
            reference[lba * 512 : (lba + count) * 512] = payload
        else:
            assert dev.read(lba, count) == bytes(
                reference[lba * 512 : (lba + count) * 512]
            )


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------


def test_profiles_are_ordered_by_speed():
    assert (DEVICE_PROFILES["hdd"].read_ns
            > DEVICE_PROFILES["nand"].read_ns
            > DEVICE_PROFILES["nvm1"].read_ns
            > DEVICE_PROFILES["nvm2"].read_ns)


def test_nvm2_matches_table1_device_latency():
    assert NVM_GEN2.read_ns == 3224


def test_sample_within_jitter_band():
    rng = RandomStreams(1).stream("dev")
    model = LatencyModel("x", read_ns=1000, write_ns=1000, parallelism=1,
                         jitter=0.1)
    for _ in range(200):
        sample = model.sample_read(rng)
        assert 900 <= sample <= 1100


def test_zero_jitter_is_deterministic():
    rng = RandomStreams(1).stream("dev")
    model = LatencyModel("x", read_ns=1000, write_ns=900, parallelism=1,
                         jitter=0.0)
    assert model.sample_read(rng) == 1000
    assert model.sample_write(rng) == 900


def test_max_iops():
    model = LatencyModel("x", read_ns=1000, write_ns=1000, parallelism=4,
                         jitter=0.0)
    assert model.max_iops() == pytest.approx(4e6)


def test_bad_model_rejected():
    with pytest.raises(InvalidArgument):
        LatencyModel("x", read_ns=0, write_ns=1, parallelism=1)
    with pytest.raises(InvalidArgument):
        LatencyModel("x", read_ns=1, write_ns=1, parallelism=0)
    with pytest.raises(InvalidArgument):
        LatencyModel("x", read_ns=1, write_ns=1, parallelism=1, jitter=1.5)


# ---------------------------------------------------------------------------
# NVMe device
# ---------------------------------------------------------------------------


def make_device(parallelism=2, jitter=0.0, read_ns=1000, trace=None):
    sim = Simulator()
    model = LatencyModel("t", read_ns=read_ns, write_ns=read_ns,
                         parallelism=parallelism, jitter=jitter)
    media = BlockDevice(64)
    rng = RandomStreams(7).stream("nvme")
    device = NvmeDevice(sim, model, media, rng, trace=trace)
    return sim, device, media


def test_nvme_read_completes_with_data():
    sim, device, media = make_device()
    media.write(5, b"\xaa" * 512)
    done = []
    device.completion_handler = lambda cmd: done.append(cmd)
    device.submit(NvmeCommand("read", 5, 1))
    sim.run()
    assert len(done) == 1
    assert done[0].data == b"\xaa" * 512
    assert done[0].complete_ns == 1000


def test_nvme_write_hits_media():
    sim, device, media = make_device()
    done = []
    device.completion_handler = lambda cmd: done.append(cmd)
    device.submit(NvmeCommand("write", 3, 1, data=b"\x55" * 512))
    sim.run()
    assert media.read(3, 1) == b"\x55" * 512


def test_nvme_parallelism_bounds_throughput():
    # 4 commands on a 2-wide device at 1 us each -> finishes at 2 us.
    sim, device, _ = make_device(parallelism=2)
    done = []
    device.completion_handler = lambda cmd: done.append(sim.now)
    for lba in range(4):
        device.submit(NvmeCommand("read", lba, 1))
    sim.run()
    assert done == [1000, 1000, 2000, 2000]


def test_nvme_completion_without_handler_raises():
    sim, device, _ = make_device()
    device.submit(NvmeCommand("read", 0, 1))
    with pytest.raises(IoError):
        sim.run()


def test_nvme_trace_records_source():
    trace = IoTrace()
    sim, device, _ = make_device(trace=trace)
    device.completion_handler = lambda cmd: None
    device.submit(NvmeCommand("read", 0, 1, source="bpf-recycle"))
    device.submit(NvmeCommand("read", 1, 1))
    sim.run()
    assert trace.count(source="bpf-recycle") == 1
    assert trace.count(source="bio") == 1
    assert all(entry.service_ns == 1000 for entry in trace)


def test_io_trace_ring_buffer_bounds_memory():
    trace = IoTrace(max_entries=4)
    for lba in range(10):
        trace.record(TraceEntry(submit_ns=lba, complete_ns=lba + 1,
                                opcode="read", lba=lba, sectors=1,
                                source="bio" if lba % 2 else "bpf-recycle"))
    assert len(trace) == 4
    assert trace.recorded_total == 10
    # Only the newest max_entries are retained, and count() agrees.
    assert [entry.lba for entry in trace] == [6, 7, 8, 9]
    assert trace.count(source="bio") == 2
    assert trace.count(source="bpf-recycle") == 2


def test_io_trace_rejects_bad_max_entries():
    with pytest.raises(ValueError):
        IoTrace(max_entries=0)


def test_nvme_command_validation():
    with pytest.raises(InvalidArgument):
        NvmeCommand("erase", 0, 1)
    with pytest.raises(InvalidArgument):
        NvmeCommand("write", 0, 1)
    with pytest.raises(InvalidArgument):
        NvmeCommand("write", 0, 2, data=bytes(512))


def test_nvme_retarget_clears_state():
    cmd = NvmeCommand("read", 1, 1)
    cmd.data = b"x"
    cmd.retarget(9, 2)
    assert (cmd.lba, cmd.sectors, cmd.data) == (9, 2, None)


def test_nvme_retarget_clears_service_stamps():
    """A recycled descriptor must not carry the previous hop's timings."""
    sim, device, _ = make_device(parallelism=1)
    device.completion_handler = lambda c: None
    cmd = NvmeCommand("read", 1, 1)
    cmd.driver_ns = 123
    device.submit(cmd)
    sim.run()
    assert cmd.complete_ns != -1 and cmd.submit_ns != -1
    cmd.span = 42
    cmd.path = "chain"
    cmd.retarget(2, 1)
    assert (cmd.submit_ns, cmd.complete_ns, cmd.driver_ns) == (-1, -1, 0)
    assert cmd.status == 0
    # span/path are caller-owned context and survive the recycle.
    assert (cmd.span, cmd.path) == (42, "chain")


def test_nvme_stale_descriptor_resubmit_rejected():
    """Resubmitting a completed descriptor without retarget is a bug."""
    sim, device, _ = make_device(parallelism=1)
    device.completion_handler = lambda c: None
    cmd = NvmeCommand("read", 1, 1)
    device.submit(cmd)
    sim.run()
    with pytest.raises(IoError, match="stale NVMe descriptor"):
        device.submit(cmd)
    cmd.retarget(1, 1)
    device.submit(cmd)
    sim.run()
    assert device.completed == 2


def test_nvme_error_completion_has_no_payload():
    """The error-payload contract: status != 0 <=> data is None, and a
    successful read's payload is exactly sectors * 512 bytes."""
    sim, device, _ = make_device(parallelism=1)
    seen = []
    device.completion_handler = seen.append
    device.inject_media_error(5)
    device.submit(NvmeCommand("read", 5, 2))
    device.submit(NvmeCommand("read", 8, 2))
    sim.run()
    failed, ok = seen
    assert failed.status != 0
    assert failed.data is None
    assert ok.status == 0
    assert len(ok.data) == ok.sectors * 512


def test_nvme_queue_depth_tracking():
    sim, device, _ = make_device(parallelism=1)
    device.completion_handler = lambda cmd: None
    for lba in range(3):
        device.submit(NvmeCommand("read", lba, 1))
    assert device.queue_depth == 3
    sim.run()
    assert device.queue_depth == 0
    assert device.completed == 3
