"""Integration tests for the chain engine (the paper's core mechanism)."""

import pytest

from chainutil import (
    NVM2_EXACT,
    build_machine,
    install_walker,
    linked_file_bytes,
    walker_program,
)
from repro.core import Hook
from repro.errors import ChainLimitExceeded, NotInstalled
from repro.kernel import IoUring, ReadResult

ORDER = [3, 5, 0, 7, 2, 6, 1, 4]


def make_list_machine(order=ORDER, **kwargs):
    sim, kernel, bpf = build_machine(**kwargs)
    kernel.create_file("/list", linked_file_bytes(order))
    return sim, kernel, bpf


# ---------------------------------------------------------------------------
# NVMe hook
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("vm_mode", ["block", "interp"])
def test_nvme_chain_walks_to_the_end(vm_mode):
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list", vm_mode=vm_mode)

    def workload():
        result = yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.hops == len(ORDER)
    assert result.value == 1000 + ORDER[-1]


def test_nvme_chain_reissues_from_driver_not_bio():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)

    kernel.run_syscall(workload())
    assert kernel.trace.count(source="bpf-recycle") == len(ORDER) - 1
    assert kernel.trace.count(source="bio") == 1


def test_nvme_chain_latency_beats_baseline():
    """The headline claim: chaining at the driver cuts latency ~in half."""
    depth = 10
    order = list(range(depth))
    sim, kernel, bpf = make_list_machine(order)
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def chain():
        start = sim.now
        yield from bpf.read_chain(proc, fd, 0, 4096)
        return sim.now - start

    chain_ns = kernel.run_syscall(chain())

    def baseline():
        start = sim.now
        offset = 0
        cost = kernel.cost
        for _hop in range(depth):
            result = yield from kernel.sys_pread(proc, fd, offset, 4096)
            # App-side processing to find the next pointer.
            yield from kernel.cpus.run_thread(cost.user_process_ns)
            offset = int.from_bytes(result.data[0:8], "little")
        return sim.now - start

    baseline_ns = kernel.run_syscall(baseline())
    assert chain_ns < 0.65 * baseline_ns  # at least ~35% faster at depth 10


def test_chain_value_and_buffer_returns():
    # The walker returns a value; also check a buffer-returning program.
    sim, kernel, bpf = make_list_machine([0, 2, 1])
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.value == 1001
    assert result.data == b""
    assert result.final_offset == 1 * 4096


def test_read_chain_without_install_raises():
    sim, kernel, bpf = make_list_machine()
    proc = kernel.spawn_process()

    def workload():
        fd = yield from kernel.sys_open(proc, "/list")
        yield from bpf.read_chain(proc, fd, 0, 4096)

    with pytest.raises(NotInstalled):
        kernel.run_syscall(workload())


def test_tagged_sys_pread_uses_chain():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from kernel.sys_pread(proc, fd, ORDER[0] * 4096,
                                             4096, tagged=True)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.hops == len(ORDER)


def test_untagged_read_ignores_installation():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from kernel.sys_pread(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.hops == 1  # plain read, no chaining
    assert len(result.data) == 4096


# ---------------------------------------------------------------------------
# Syscall hook
# ---------------------------------------------------------------------------


def test_syscall_hook_chain_completes():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list", hook=Hook.SYSCALL)

    def workload():
        result = yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.hops == len(ORDER)
    assert result.value == 1000 + ORDER[-1]
    # Syscall-layer reissues still walk the BIO layer -> all commands "bio".
    assert kernel.trace.count(source="bpf-recycle") == 0
    assert kernel.trace.count(source="bio") == len(ORDER)


def test_syscall_hook_is_slower_than_nvme_hook():
    depth = 10
    order = list(range(depth))

    def chain_time(hook):
        sim, kernel, bpf = make_list_machine(order)
        proc, fd = install_walker(sim, kernel, bpf, "/list", hook=hook)

        def workload():
            start = sim.now
            yield from bpf.read_chain(proc, fd, 0, 4096)
            return sim.now - start

        return kernel.run_syscall(workload())

    assert chain_time(Hook.NVME) < chain_time(Hook.SYSCALL)


# ---------------------------------------------------------------------------
# Chain limit (fairness bound)
# ---------------------------------------------------------------------------


def test_chain_limit_kills_long_chain():
    order = list(range(20))
    sim, kernel, bpf = make_list_machine(order, max_chain_hops=5)
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.status == ReadResult.CHAIN_LIMIT
    assert result.hops == 5
    # The kill hands back the next offset so the app can continue.
    assert result.final_offset == 5 * 4096
    assert bpf.accounting.chains_killed[proc.pid] == 1


def test_chain_limit_robust_read_raises_when_asked():
    order = list(range(20))
    sim, kernel, bpf = make_list_machine(order, max_chain_hops=5)
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        yield from bpf.read_chain_robust(proc, fd, 0, 4096,
                                         continue_on_limit=False)

    with pytest.raises(ChainLimitExceeded):
        kernel.run_syscall(workload())


def test_chain_limit_robust_read_continues_in_bounded_chains():
    order = list(range(20))
    sim, kernel, bpf = make_list_machine(order, max_chain_hops=5)
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from bpf.read_chain_robust(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.value == 1000 + order[-1]
    assert result.hops == 20
    # ceil(20 / 5) - 1 = 3 kills before the chain finished.
    assert bpf.accounting.chains_killed[proc.pid] == 3


def test_chain_within_limit_unaffected():
    sim, kernel, bpf = make_list_machine(max_chain_hops=len(ORDER))
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)
        return result

    assert kernel.run_syscall(workload()).ok


def test_accounting_counts_and_drains():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)

    kernel.run_syscall(workload())
    assert bpf.accounting.totals[proc.pid] == len(ORDER) - 1
    drained = bpf.accounting.drain_to_bio()
    assert drained == {proc.pid: len(ORDER) - 1}
    assert bpf.accounting.pending(proc.pid) == 0
    assert bpf.accounting.totals[proc.pid] == len(ORDER) - 1


# ---------------------------------------------------------------------------
# Extent invalidation (EEXTENT)
# ---------------------------------------------------------------------------


def test_unmap_invalidates_and_chain_aborts():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")
    inode = kernel.fs.lookup("/list")

    def workload():
        # Punch a block after install: the snapshot goes invalid.
        kernel.fs.punch_range(inode, 9 * 4096, 4096)
        result = yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)
        return result

    # Extend the file so punching block 9 doesn't affect the chain's data.
    kernel.fs.write_sync(inode, 9 * 4096, b"\x00" * 4096)

    def install_refresh():
        yield from bpf.refresh(proc, fd)

    kernel.run_syscall(install_refresh())
    result = kernel.run_syscall(workload())
    assert result.status == ReadResult.EXTENT_INVALIDATED
    assert bpf.cache.invalidations >= 1


def test_robust_read_recovers_from_invalidation():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")
    inode = kernel.fs.lookup("/list")
    kernel.fs.write_sync(inode, 9 * 4096, b"\x00" * 4096)

    def workload():
        kernel.fs.punch_range(inode, 9 * 4096, 4096)
        result = yield from bpf.read_chain_robust(proc, fd,
                                                  ORDER[0] * 4096, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.value == 1000 + ORDER[-1]
    assert bpf.cache.refreshes >= 2  # install + recovery refresh


def test_growth_does_not_invalidate():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")
    inode = kernel.fs.lookup("/list")

    def workload():
        kernel.fs.write_sync(inode, 100 * 4096, b"\x00" * 4096)  # grow
        result = yield from bpf.read_chain(proc, fd, ORDER[0] * 4096, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert bpf.cache.invalidations == 0


def test_chain_to_unsnapshotted_offset_misses():
    # Install first, then grow the file and point the list into the new
    # region: the cache snapshot doesn't cover it -> EEXTENT.
    import struct

    order = [0, 1]
    sim, kernel, bpf = make_list_machine(order)
    proc, fd = install_walker(sim, kernel, bpf, "/list")
    inode = kernel.fs.lookup("/list")
    kernel.fs.write_sync(inode, 50 * 4096, b"\x00" * 4096)
    # Rewrite block 0's next pointer to the new block (beyond the snapshot).
    head = bytearray(kernel.fs.read_sync(inode, 0, 4096))
    struct.pack_into("<Q", head, 0, 50 * 4096)
    kernel.fs.write_sync(inode, 0, bytes(head))

    def workload():
        result = yield from bpf.read_chain(proc, fd, 0, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.status == ReadResult.EXTENT_INVALIDATED
    assert result.final_offset == 50 * 4096


# ---------------------------------------------------------------------------
# Split fallback (granularity mismatch)
# ---------------------------------------------------------------------------


def test_split_chain_falls_back_and_robust_read_completes():
    # Two-block extents with guard gaps: an 8 KiB read spans a discontiguous
    # extent boundary on every other hop, forcing the split fallback.
    order = list(range(11))  # chain terminates at block 10
    sim, kernel, bpf = build_machine(max_extent_blocks=2)
    # Pad with one extra block so the final 8 KiB read is fully mapped.
    kernel.create_file("/list", linked_file_bytes(order) + bytes(4096))
    assert kernel.fs.fragmentation_of(kernel.fs.lookup("/list")) > 1
    proc, fd = install_walker(sim, kernel, bpf, "/list", block_size=8192)

    def workload():
        result = yield from bpf.read_chain_robust(proc, fd, 0, 8192,
                                                  max_retries=16)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.value == 1000 + order[-1]
    assert bpf.engine.split_fallbacks >= 1


def test_first_hop_split_falls_back_and_recovers():
    order = list(range(11))
    sim, kernel, bpf = build_machine(max_extent_blocks=2)
    kernel.create_file("/list", linked_file_bytes(order) + bytes(4096))
    proc, fd = install_walker(sim, kernel, bpf, "/list", block_size=8192)

    def workload():
        # Offset 4096 + length 8192 spans blocks 1-2, which sit in
        # different extents: the very first hop must fall back.
        result = yield from bpf.read_chain_robust(proc, fd, 4096, 8192,
                                                  max_retries=16)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert result.value == 1000 + order[-1]


def test_contiguous_chain_never_falls_back():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        result = yield from bpf.read_chain_robust(proc, fd,
                                                  ORDER[0] * 4096, 4096)
        return result

    result = kernel.run_syscall(workload())
    assert result.ok
    assert bpf.engine.split_fallbacks == 0


# ---------------------------------------------------------------------------
# io_uring chains
# ---------------------------------------------------------------------------


def test_iouring_tagged_chains_complete():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        ring = IoUring(kernel, proc)
        ring.chain_submitter = bpf.engine.submit_uring_chain
        for index in range(4):
            ring.prep_read(fd, ORDER[0] * 4096, 4096, user_data=index,
                           tagged=True)
        cqes = yield from ring.enter(wait_nr=4)
        return cqes

    cqes = kernel.run_syscall(workload())
    assert len(cqes) == 4
    for cqe in cqes:
        assert cqe.result.ok
        assert cqe.result.value == 1000 + ORDER[-1]
    # 4 chains x (depth-1) recycles.
    assert kernel.trace.count(source="bpf-recycle") == 4 * (len(ORDER) - 1)


def test_iouring_untagged_sqes_unaffected_by_installation():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        ring = IoUring(kernel, proc)
        ring.chain_submitter = bpf.engine.submit_uring_chain
        ring.prep_read(fd, 0, 4096, user_data="plain")
        cqes = yield from ring.enter(wait_nr=1)
        return cqes

    cqes = kernel.run_syscall(workload())
    assert cqes[0].result.hops == 1
    assert len(cqes[0].result.data) == 4096


# ---------------------------------------------------------------------------
# Uninstall / refresh ioctls
# ---------------------------------------------------------------------------


def test_uninstall_restores_plain_reads():
    sim, kernel, bpf = make_list_machine()
    proc, fd = install_walker(sim, kernel, bpf, "/list")

    def workload():
        yield from bpf.uninstall(proc, fd)
        result = yield from kernel.sys_pread(proc, fd, 0, 4096, tagged=True)
        return result

    result = kernel.run_syscall(workload())
    assert result.hops == 1  # tag ignored without an installation
    assert proc.file(fd).bpf_install is None
