"""Property-based tests of the eBPF toolchain.

Three properties:

1. **Differential execution** — the interpreter, per-instruction JIT,
   and fused-block compiler agree exactly (full ExecutionResult) on
   random straight-line ALU programs, and all match an independent
   Python reference evaluator.
2. **Verifier soundness (safety)** — any randomly generated structured
   program the verifier *accepts* executes on random inputs without a
   single VM fault (the VM's runtime checks never fire).
3. **Encode/assemble/disassemble closure** — random accepted programs
   survive wire encoding and disassembly unchanged.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hooks import storage_ctx_layout, storage_helpers
from repro.ebpf import Instruction, Program, Vm, assemble, verify
from repro.ebpf.disasm import disassemble
from repro.ebpf.isa import decode, encode
from repro.ebpf.vm import VmEnvironment
from repro.errors import VerifierError, VmFault

HELPERS = storage_helpers()
LAYOUT = storage_ctx_layout(256, 64)

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF


def _s64(value):
    return value - 2**64 if value >= 2**63 else value


def _s32(value):
    return value - 2**32 if value >= 2**31 else value


# ---------------------------------------------------------------------------
# 1. Differential ALU execution
# ---------------------------------------------------------------------------

_ALU = ["add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh",
        "rsh", "arsh", "mov"]


def _reference_alu(op, a, b, is32):
    if is32:
        a &= U32
        b &= U32
    top = U32 if is32 else U64
    bits = 31 if is32 else 63
    if op == "add":
        result = a + b
    elif op == "sub":
        result = a - b
    elif op == "mul":
        result = a * b
    elif op == "div":
        result = 0 if b == 0 else a // b
    elif op == "mod":
        result = a if b == 0 else a % b
    elif op == "or":
        result = a | b
    elif op == "and":
        result = a & b
    elif op == "xor":
        result = a ^ b
    elif op == "lsh":
        result = a << (b & bits)
    elif op == "rsh":
        result = a >> (b & bits)
    elif op == "arsh":
        signed = _s32(a) if is32 else _s64(a)
        result = signed >> (b & bits)
    elif op == "mov":
        result = b
    else:
        raise AssertionError(op)
    return result & top


@st.composite
def _alu_steps(draw):
    steps = []
    for _ in range(draw(st.integers(1, 25))):
        op = draw(st.sampled_from(_ALU))
        is32 = draw(st.booleans())
        dst = draw(st.integers(2, 5))
        if draw(st.booleans()):
            src = draw(st.integers(2, 5))
            steps.append((op, is32, dst, ("reg", src)))
        else:
            imm = draw(st.integers(-(2**31), 2**31 - 1))
            steps.append((op, is32, dst, ("imm", imm)))
    return steps


@settings(max_examples=120, deadline=None)
@given(_alu_steps(),
       st.lists(st.integers(0, U64), min_size=4, max_size=4))
def test_interp_jit_and_reference_agree(steps, seeds):
    # Build the program: seed r2..r5 from ctx args, run steps, store r2.
    lines = [f"ldxdw r{reg}, [r1+{40 + 8 * (reg - 2)}]"
             for reg in range(2, 6)]
    for op, is32, dst, (kind, value) in steps:
        suffix = "32" if is32 else ""
        operand = f"r{value}" if kind == "reg" else str(value)
        lines.append(f"{op}{suffix} r{dst}, {operand}")
    lines.append("stxdw [r1+88], r2")
    lines.append("mov r0, 0")
    lines.append("exit")
    program = Program(assemble("\n".join(lines)), LAYOUT, name="fuzz")
    verify(program, HELPERS)

    # Reference evaluation.
    regs = {reg: seeds[reg - 2] for reg in range(2, 6)}
    for op, is32, dst, (kind, value) in steps:
        operand = regs[value] if kind == "reg" else value & U64
        regs[dst] = _reference_alu(op, regs[dst], operand, is32)

    results = {}
    outputs = {}
    for mode in ("interp", "jit", "block"):
        vm = Vm(program, VmEnvironment(HELPERS), mode=mode)
        ctx = bytearray(LAYOUT.size)
        for index, seed in enumerate(seeds):
            ctx[40 + 8 * index : 48 + 8 * index] = seed.to_bytes(8, "little")
        results[mode] = vm.run(ctx, {"data": bytearray(256),
                                     "scratch": bytearray(64)})
        outputs[mode] = int.from_bytes(ctx[88:96], "little")

    assert outputs["interp"] == outputs["jit"] == outputs["block"] == regs[2]
    # The full ExecutionResult (return value, instruction count, trace,
    # helper calls) must be identical across all three tiers.
    assert results["interp"] == results["jit"] == results["block"]


# ---------------------------------------------------------------------------
# 2. Verifier soundness: accepted programs never fault
# ---------------------------------------------------------------------------


@st.composite
def _structured_program(draw):
    """Random programs mixing ALU, masked data loads, scratch stores, and
    forward branches — some verify, some do not."""
    lines = ["ldxdw r2, [r1+0]",        # data pointer (256 B)
             "ldxdw r3, [r1+32]",       # scratch pointer (64 B)
             "ldxdw r4, [r1+40]",       # arg0 (unknown scalar)
             "mov r5, 0"]
    label_count = 0
    open_labels = []
    for _ in range(draw(st.integers(1, 18))):
        choice = draw(st.integers(0, 6))
        if choice == 0:
            op = draw(st.sampled_from(_ALU))
            imm = draw(st.integers(-1000, 1000))
            lines.append(f"{op} r5, {imm}")
        elif choice == 1:
            # Masked, always-in-bounds data load.
            mask = draw(st.sampled_from([7, 15, 63, 127]))
            lines.append(f"and r4, {mask}")
            lines.append("mov r6, r2")
            lines.append("add r6, r4")
            lines.append("ldxb r7, [r6+0]")
            lines.append("add r5, r7")
        elif choice == 2:
            # Possibly-unsafe data load (offset may exceed the region).
            offset = draw(st.integers(0, 400))
            lines.append(f"ldxb r7, [r2+{offset}]")
        elif choice == 3:
            offset = draw(st.integers(0, 56))
            lines.append(f"stxdw [r3+{offset & ~7}], r5")
        elif choice == 4:
            # Possibly-unsafe scratch store.
            offset = draw(st.integers(0, 100))
            lines.append(f"stxb [r3+{offset}], r5")
        elif choice == 5:
            label_count += 1
            name = f"fwd{label_count}"
            imm = draw(st.integers(0, 100))
            lines.append(f"jgt r5, {imm}, {name}")
            open_labels.append(name)
        else:
            lines.append(f"stxdw [r10-{draw(st.sampled_from([8, 16, 24]))}]"
                         ", r5")
            lines.append(f"ldxdw r8, [r10-{draw(st.sampled_from([8, 16]))}]")
    lines.append("mov r0, 0")
    for name in open_labels:
        lines.append(f"{name}:")
    lines.append("mov r0, 0")
    lines.append("exit")
    return "\n".join(lines)


@settings(max_examples=150, deadline=None)
@given(_structured_program(), st.integers(0, U64), st.binary(min_size=256,
                                                             max_size=256))
def test_verified_programs_never_fault(source, arg0, data):
    try:
        program = Program(assemble(source), LAYOUT, name="fuzz2")
    except Exception:
        return  # assembler rejected (e.g. stray label) — out of scope
    try:
        verify(program, HELPERS, state_budget=30_000)
    except VerifierError:
        return  # rejected: nothing to check
    ctx = bytearray(LAYOUT.size)
    ctx[40:48] = arg0.to_bytes(8, "little")
    for mode in ("interp", "jit", "block"):
        vm = Vm(program, VmEnvironment(HELPERS), mode=mode)
        try:
            vm.run(ctx, {"data": bytearray(data),
                         "scratch": bytearray(64)})
        except VmFault as fault:
            pytest.fail(f"verifier accepted but VM faulted ({mode}): "
                        f"{fault}\n{source}")


# ---------------------------------------------------------------------------
# 3. Encoding and disassembly closure
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(_structured_program())
def test_encode_decode_disassemble_closure(source):
    try:
        insns = assemble(source)
        Program(insns, LAYOUT)
    except Exception:
        return
    assert decode(encode(insns)) == insns
    assert assemble(disassemble(insns)) == insns
