#!/usr/bin/env python
"""Gate CI on benchmark wall-clock regressions against committed baselines.

Compares every ``BENCH_<name>.json`` under ``benchmarks/baselines/``
against a freshly generated set (``--fresh DIR``) produced by the same
harness (``python benchmarks/harness.py --all --smoke --out DIR``).

Wall-clock comparison uses the min over rounds on both sides — the
least-noisy estimator available — with a relative tolerance band
(``--tolerance 0.25`` means a fresh min more than 1.25x the baseline
min fails).  Simulated-time fields (``sim_time_ns``, ``throughput``)
are deterministic functions of the workload, so any difference there is
result drift, not noise: reported as a warning by default, a failure
under ``--strict``.  Metric drift (which may legitimately carry
wall-clock-derived values, e.g. ``bench_obs_overhead``) always stays a
warning.

Exit codes: 0 all gates passed, 1 wall-clock regression (or drift with
``--strict``), 2 schema/missing-file errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Tuple

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.perf import validate_bench_json

DEFAULT_BASELINES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "baselines")


def load_bench_dir(path: str) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
    """Load and schema-validate every BENCH_*.json in ``path``.

    Returns ``(results_by_name, schema_errors)``.
    """
    results: Dict[str, Dict[str, Any]] = {}
    errors: List[str] = []
    if not os.path.isdir(path):
        return results, [f"not a directory: {path}"]
    for fname in sorted(os.listdir(path)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        fpath = os.path.join(path, fname)
        try:
            with open(fpath, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            errors.append(f"{fpath}: unreadable ({exc})")
            continue
        problems = validate_bench_json(data)
        if problems:
            errors.extend(f"{fpath}: {p}" for p in problems)
            continue
        results[data["name"]] = data
    return results, errors


def compare(baseline: Dict[str, Any], fresh: Dict[str, Any],
            tolerance: float, slack_s: float) -> Tuple[List[str], List[str]]:
    """Compare one benchmark pair.  Returns ``(regressions, drifts)``."""
    name = baseline["name"]
    regressions: List[str] = []
    drifts: List[str] = []

    if fresh["mode"] != baseline["mode"]:
        drifts.append(
            f"{name}: mode changed {baseline['mode']!r} -> {fresh['mode']!r}"
            " (wall-clock comparison skipped)")
        return regressions, drifts

    # Absolute slack on top of the relative band: sub-100 ms benches
    # would otherwise fail on scheduler noise alone.
    base_min = baseline["wall_s"]["min"]
    fresh_min = fresh["wall_s"]["min"]
    limit = base_min * (1.0 + tolerance) + slack_s
    if fresh_min > limit:
        regressions.append(
            f"{name}: wall min {fresh_min:.4f}s > {limit:.4f}s "
            f"(baseline {base_min:.4f}s, tolerance {tolerance:.0%} "
            f"+ {slack_s:g}s slack)")

    # Simulated-time results are deterministic: drift means the workload
    # or the simulation changed, which deserves a refreshed baseline.
    if fresh["sim_time_ns"] != baseline["sim_time_ns"]:
        drifts.append(
            f"{name}: sim_time_ns {baseline['sim_time_ns']} -> "
            f"{fresh['sim_time_ns']}")
    if fresh["throughput"] != baseline["throughput"]:
        drifts.append(
            f"{name}: throughput {baseline['throughput']} -> "
            f"{fresh['throughput']}")
    base_metrics = baseline.get("metrics") or {}
    fresh_metrics = fresh.get("metrics") or {}
    if set(base_metrics) != set(fresh_metrics):
        only_base = sorted(set(base_metrics) - set(fresh_metrics))
        only_fresh = sorted(set(fresh_metrics) - set(base_metrics))
        drifts.append(f"{name}: metric keys changed "
                      f"(-{only_base} +{only_fresh})")
    return regressions, drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="directory of freshly generated BENCH_*.json")
    parser.add_argument("--baselines", default=DEFAULT_BASELINES,
                        help="directory of committed baselines "
                             "(default: benchmarks/baselines)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative wall-clock slowdown allowed "
                             "(default: 0.25 = 25%%)")
    parser.add_argument("--slack", type=float, default=0.1, metavar="S",
                        help="absolute seconds added to the limit so tiny "
                             "benchmarks tolerate scheduler noise "
                             "(default: 0.1)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on sim-time/throughput drift, not just "
                             "wall-clock regressions")
    args = parser.parse_args(argv)

    baselines, base_errors = load_bench_dir(args.baselines)
    fresh, fresh_errors = load_bench_dir(args.fresh)
    schema_errors = base_errors + fresh_errors
    if schema_errors:
        for err in schema_errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2
    if not baselines:
        print(f"schema error: no BENCH_*.json under {args.baselines}",
              file=sys.stderr)
        return 2

    regressions: List[str] = []
    drifts: List[str] = []
    missing = sorted(set(baselines) - set(fresh))
    if missing:
        for name in missing:
            print(f"schema error: no fresh result for {name!r} "
                  f"under {args.fresh}", file=sys.stderr)
        return 2
    extra = sorted(set(fresh) - set(baselines))
    for name in extra:
        drifts.append(f"{name}: fresh result has no committed baseline "
                      "(add one under benchmarks/baselines)")

    for name in sorted(baselines):
        regs, drift = compare(baselines[name], fresh[name],
                              args.tolerance, args.slack)
        regressions.extend(regs)
        drifts.extend(drift)
        status = "FAIL" if regs else "ok"
        base_min = baselines[name]["wall_s"]["min"]
        fresh_min = fresh[name]["wall_s"]["min"]
        ratio = fresh_min / base_min if base_min else float("inf")
        print(f"{status:4}  {name:28}  baseline {base_min:8.4f}s  "
              f"fresh {fresh_min:8.4f}s  ({ratio:.2f}x)")

    for message in drifts:
        print(f"drift: {message}", file=sys.stderr)
    for message in regressions:
        print(f"regression: {message}", file=sys.stderr)

    if regressions:
        return 1
    if drifts and args.strict:
        return 1
    print(f"all {len(baselines)} benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
